package report

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"satwatch/internal/analytics"
	"satwatch/internal/cdn"
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/netsim"
	"satwatch/internal/services"
	"satwatch/internal/tstat"
)

var (
	cdClient = netip.MustParseAddr("88.16.0.2")
	esClient = netip.MustParseAddr("88.20.0.2")
)

// handDataset builds a deterministic small dataset for renderer tests.
func handDataset() *analytics.Dataset {
	srvW := cdn.ServerAddr("e1.whatsapp.net", cdn.RegionEuropeNear, 0)
	srvA := cdn.ServerAddr("scooper.news", cdn.RegionAfrica, 0)
	out := &netsim.Output{
		Meta: map[netip.Addr]netsim.CustomerMeta{
			cdClient: {Country: "CD", Beam: 1, Multiplex: 20, Resolver: dnssim.ResolverGoogle},
			esClient: {Country: "ES", Beam: 10, Multiplex: 1, Resolver: dnssim.ResolverOperator},
		},
		CountryPrefixes: map[netip.Prefix]geo.CountryCode{
			netip.MustParsePrefix("88.16.0.0/16"): "CD",
			netip.MustParsePrefix("88.20.0.0/16"): "ES",
		},
		Beams: []netsim.BeamStat{
			{Beam: 1, Country: "CD", PeakUtil: 0.95, MeanUtil: 0.6},
			{Beam: 10, Country: "ES", PeakUtil: 0.3, MeanUtil: 0.2},
		},
	}
	mk := func(client, server netip.Addr, proto tstat.Protocol, domain string, start time.Duration, down int64, sat, ground time.Duration) tstat.FlowRecord {
		return tstat.FlowRecord{
			Client: client, Server: server, CPort: 1024, SPort: 443,
			Proto: proto, Domain: domain,
			Start: start, End: start + 8*time.Second,
			BytesUp: 50_000, BytesDown: down, PktsUp: 40, PktsDown: 400,
			SatRTT:    sat,
			GroundRTT: tstat.RTTStats{Samples: 2, Avg: ground, Min: ground, Max: ground},
		}
	}
	for i := 0; i < 300; i++ {
		// Congolese peak-window chat flows.
		out.Flows = append(out.Flows, mk(cdClient, srvW, tstat.ProtoHTTPS, "e1.whatsapp.net",
			13*time.Hour+time.Duration(i)*time.Second, 8<<20, 1800*time.Millisecond, 22*time.Millisecond))
		// Spanish evening flows.
		out.Flows = append(out.Flows, mk(esClient, srvW, tstat.ProtoHTTPS, "e1.whatsapp.net",
			18*time.Hour+time.Duration(i)*time.Second, 2<<20, 700*time.Millisecond, 18*time.Millisecond))
	}
	// A hairpinned African flow and a QUIC flow for variety.
	out.Flows = append(out.Flows, mk(cdClient, srvA, tstat.ProtoHTTPS, "scooper.news",
		2*time.Hour, 1<<20, 600*time.Millisecond, 340*time.Millisecond))
	out.Flows = append(out.Flows, mk(esClient, srvW, tstat.ProtoQUIC, "www.youtube.com",
		19*time.Hour, 6<<20, 0, 14*time.Millisecond))
	out.DNS = []tstat.DNSRecord{
		{Client: cdClient, Resolver: netip.MustParseAddr("8.8.8.8"), Query: "e1.whatsapp.net", T: 13 * time.Hour, ResponseTime: 23 * time.Millisecond},
		{Client: esClient, Resolver: netip.MustParseAddr("185.12.64.53"), Query: "www.google.com", T: 18 * time.Hour, ResponseTime: 4 * time.Millisecond},
	}
	return analytics.NewDataset(out, 1)
}

func TestTable1Build(t *testing.T) {
	ds := handDataset()
	t1 := BuildTable1(ds)
	if t1.Total == 0 {
		t.Fatal("no volume")
	}
	sum := 0.0
	for _, v := range t1.SharePct {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("shares sum to %v", sum)
	}
	if !strings.Contains(t1.Render(), "TCP/HTTPS") {
		t.Fatal("render missing rows")
	}
}

func TestFig2Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig2(ds)
	cd, ok := f.Row("CD")
	if !ok {
		t.Fatal("no CD row")
	}
	es, _ := f.Row("ES")
	if cd.VolumeSharePct <= es.VolumeSharePct {
		t.Fatal("CD should carry more volume")
	}
	if cd.CustomerSharePct != 50 {
		t.Fatalf("CD customer share %v", cd.CustomerSharePct)
	}
	if _, ok := f.Row("XX"); ok {
		t.Fatal("phantom row")
	}
	if !strings.Contains(f.Render(), "Congo") {
		t.Fatal("render missing country")
	}
}

func TestFig4Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig4(ds)
	// Spanish flows at 18-19 UTC.
	if p := f.PeakHourUTC("ES"); p != 18 && p != 19 {
		t.Fatalf("ES peak %d", p)
	}
	if f.Normalized["ES"][f.PeakHourUTC("ES")] != 1.0 {
		t.Fatal("peak not normalized to 1")
	}
	if !strings.Contains(f.Render(), "peak") {
		t.Fatal("render broken")
	}
}

func TestFig5Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig5(ds)
	if f.Flows["CD"] == nil || f.Flows["CD"].Len() != 1 {
		t.Fatalf("CD customer-days: %+v", f.Flows["CD"])
	}
	// 301 flows in the CD day: above the 250 threshold → volume counted.
	if f.Down["CD"] == nil || f.Down["CD"].Len() != 1 {
		t.Fatal("active CD day not counted")
	}
	if !strings.Contains(f.Render(), "P(flows<=250)") {
		t.Fatal("render broken")
	}
}

func TestFig6Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig6(ds)
	if len(f.Rows) != 12 {
		t.Fatalf("%d rows", len(f.Rows))
	}
	// Both customer-days are active (301/302 flows) and both used WhatsApp.
	if f.Pct["Whatsapp"]["CD"] != 100 {
		t.Fatalf("CD WhatsApp penetration %v", f.Pct["Whatsapp"]["CD"])
	}
	if !strings.Contains(f.Render(), "Whatsapp") {
		t.Fatal("render broken")
	}
}

func TestFig7Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig7(ds)
	if f.Median(services.CategoryChat, "CD") <= f.Median(services.CategoryChat, "ES") {
		t.Fatal("CD chat volume should dominate")
	}
	if !strings.Contains(f.Render(), "Chat") {
		t.Fatal("render broken")
	}
}

func TestFig8aBuild(t *testing.T) {
	ds := handDataset()
	f := BuildFig8a(ds)
	if f.Peak["CD"] == nil || f.Peak["CD"].Median() != 1.8 {
		t.Fatalf("CD peak: %+v", f.Peak["CD"])
	}
	if f.Night["CD"] == nil || f.Night["CD"].Median() != 0.6 {
		t.Fatal("CD night sample missing")
	}
	if !strings.Contains(f.Render(), "night") {
		t.Fatal("render broken")
	}
}

func TestFig8bBuild(t *testing.T) {
	ds := handDataset()
	f := BuildFig8b(ds, []netsim.BeamStat{
		{Beam: 1, Country: "CD", PeakUtil: 0.95},
		{Beam: 10, Country: "ES", PeakUtil: 0.3},
	})
	if len(f.Rows) == 0 {
		t.Fatal("no beam rows")
	}
	for _, r := range f.Rows {
		if r.Beam == 1 && r.UtilNorm != 1.0 {
			t.Fatalf("busiest beam norm %v", r.UtilNorm)
		}
	}
	if !strings.Contains(f.Render(), "Beam") {
		t.Fatal("render broken")
	}
}

func TestFig9Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig9(ds)
	if f.ShareBelow("ES", 0.05) < 0.9 {
		t.Fatal("Spanish traffic should be near the gateway")
	}
	if f.Samples["CD"].CCDF(0.25) == 0 {
		t.Fatal("hairpin bump lost")
	}
	if !strings.Contains(f.Render(), "median") {
		t.Fatal("render broken")
	}
}

func TestFig10Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig10(ds)
	if f.SharePct["CD"][dnssim.ResolverGoogle] != 100 {
		t.Fatalf("CD google share %v", f.SharePct["CD"][dnssim.ResolverGoogle])
	}
	if f.MedianResponse[dnssim.ResolverOperator] != 0.004 {
		t.Fatalf("operator median %v", f.MedianResponse[dnssim.ResolverOperator])
	}
	if !strings.Contains(f.Render(), "Operator-EU") {
		t.Fatal("render broken")
	}
}

func TestResolverImpactBuild(t *testing.T) {
	ds := handDataset()
	ri := BuildResolverImpact(ds, "CD", "ES")
	if v, ok := ri.Cell("CD", dnssim.ResolverGoogle, "whatsapp.net"); !ok || v < 0.0219 || v > 0.0221 {
		t.Fatalf("cell %v/%v", v, ok)
	}
	if _, ok := ri.Cell("CD", dnssim.ResolverOperator, "whatsapp.net"); ok {
		t.Fatal("phantom cell")
	}
	if len(ri.Domains()) == 0 {
		t.Fatal("no domains")
	}
	if !strings.Contains(ri.Render(), "whatsapp.net") {
		t.Fatal("render broken")
	}
}

func TestFig11Build(t *testing.T) {
	ds := handDataset()
	f := BuildFig11(ds, 1<<20)
	if f.All["CD"] == nil || f.All["CD"].Len() == 0 {
		t.Fatal("no bulk samples")
	}
	// 8 MiB over 8s ≈ 8.4 Mb/s.
	med := f.Peak["CD"].Median()
	if med < 8e6 || med > 9e6 {
		t.Fatalf("CD peak goodput %v", med)
	}
	if !strings.Contains(f.Render(), "Mb/s") {
		t.Fatal("render broken")
	}
}

func TestFormatters(t *testing.T) {
	if fmtBytes(1.5e9) != "1.50 GB" {
		t.Fatalf("fmtBytes %q", fmtBytes(1.5e9))
	}
	if fmtBytes(2.5e12) != "2.50 TB" {
		t.Fatal("TB formatting")
	}
	if fmtPct(0) != "0" || fmtPct(0.05) != "0.05" || fmtPct(12.34) != "12.3" {
		t.Fatal("fmtPct")
	}
	if fmtMs(0.0215) != "21.5 ms" {
		t.Fatalf("fmtMs %q", fmtMs(0.0215))
	}
	if fmtMbps(30e6) != "30.0 Mb/s" {
		t.Fatal("fmtMbps")
	}
	if secondsToDuration(1.5) != 1500*time.Millisecond {
		t.Fatal("secondsToDuration")
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &table{header: []string{"a", "bb"}}
	tab.add("xxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatal("separator not aligned with header")
	}
}
