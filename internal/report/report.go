// Package report materializes each of the paper's tables and figures from
// an enriched dataset: a typed result struct per experiment (so tests can
// assert on the numbers) plus an ASCII rendering that prints the same
// rows/series the paper reports.
package report

import (
	"fmt"
	"strings"
	"time"

	"satwatch/internal/geo"
)

// top6 is the paper's presentation order for the detailed analyses.
var top6 = geo.Top6()

// fmtPct renders a percentage with sensible precision.
func fmtPct(p float64) string {
	switch {
	case p == 0:
		return "0"
	case p < 0.1:
		return fmt.Sprintf("%.2f", p)
	default:
		return fmt.Sprintf("%.1f", p)
	}
}

// fmtBytes renders byte volumes human-readably.
func fmtBytes(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.2f TB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f MB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f KB", b/1e3)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// fmtMs renders a duration in milliseconds.
func fmtMs(seconds float64) string {
	return fmt.Sprintf("%.1f ms", seconds*1e3)
}

// fmtMbps renders a rate in Mb/s.
func fmtMbps(bps float64) string {
	return fmt.Sprintf("%.1f Mb/s", bps/1e6)
}

// table is a minimal fixed-width table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// countryName resolves a code to the paper's display name.
func countryName(code geo.CountryCode) string {
	if c, ok := geo.ByCode(code); ok {
		return c.Name
	}
	return string(code)
}

// secondsToDuration converts float seconds for display.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
