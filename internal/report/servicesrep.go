package report

import (
	"strings"

	"satwatch/internal/analytics"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

// Fig6 is the service-popularity heatmap: the percentage of active
// customers using each service daily, per country.
type Fig6 struct {
	Rows []string // service names, paper row order
	// Pct[service][country] is the measured penetration percentage.
	Pct map[string]map[geo.CountryCode]float64
	// Average per service across the top-6 countries.
	Average map[string]float64
}

// BuildFig6 computes the heatmap from customer-day service usage.
func BuildFig6(ds *analytics.Dataset) Fig6 {
	use, activeDays := ds.ServiceUsersByCountry()
	out := Fig6{Pct: map[string]map[geo.CountryCode]float64{}, Average: map[string]float64{}}
	for _, svc := range services.Intentional() {
		out.Rows = append(out.Rows, svc.Name)
		m := map[geo.CountryCode]float64{}
		var sum float64
		var n int
		for _, code := range top6 {
			if activeDays[code] == 0 {
				continue
			}
			pct := 100 * float64(use[svc.Name][code]) / float64(activeDays[code])
			m[code] = pct
			sum += pct
			n++
		}
		out.Pct[svc.Name] = m
		if n > 0 {
			out.Average[svc.Name] = sum / float64(n)
		}
	}
	return out
}

// Render prints the heatmap as a matrix.
func (f Fig6) Render() string {
	header := []string{"Service"}
	for _, code := range top6 {
		header = append(header, countryName(code))
	}
	header = append(header, "Average")
	tab := &table{header: header}
	for _, svc := range f.Rows {
		cells := []string{svc}
		for _, code := range top6 {
			cells = append(cells, fmtPct(f.Pct[svc][code]))
		}
		cells = append(cells, fmtPct(f.Average[svc]))
		tab.add(cells...)
	}
	return "Figure 6: service popularity (% of active customers per day)\n" + tab.String()
}

// Fig7 is the daily volume per customer per service category.
type Fig7 struct {
	// Boxes[category][country] summarizes the daily down+up bytes of
	// customers that used the category that day.
	Boxes map[services.Category]map[geo.CountryCode]analytics.Boxplot
}

// BuildFig7 computes the category-volume boxplots.
func BuildFig7(ds *analytics.Dataset) Fig7 {
	samples := map[services.Category]map[geo.CountryCode][]float64{}
	for _, agg := range ds.GroupByCustomerDay() {
		if agg.Country == "" {
			continue
		}
		for cat, bytes := range agg.CategoryBytes {
			if bytes <= 0 {
				continue
			}
			m, ok := samples[cat]
			if !ok {
				m = map[geo.CountryCode][]float64{}
				samples[cat] = m
			}
			m[agg.Country] = append(m[agg.Country], float64(bytes))
		}
	}
	out := Fig7{Boxes: map[services.Category]map[geo.CountryCode]analytics.Boxplot{}}
	for cat, byCountry := range samples {
		m := map[geo.CountryCode]analytics.Boxplot{}
		for code, xs := range byCountry {
			m[code] = analytics.NewSample(xs).Box()
		}
		out.Boxes[cat] = m
	}
	return out
}

// Median returns the median daily volume for (category, country) in bytes.
func (f Fig7) Median(cat services.Category, code geo.CountryCode) float64 {
	return f.Boxes[cat][code].P50
}

// Render prints one boxplot row per (category, country).
func (f Fig7) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: daily volume per customer per service category\n")
	tab := &table{header: []string{"Category", "Country", "P5", "P25", "median", "P75", "P95"}}
	for _, cat := range services.Categories() {
		byCountry, ok := f.Boxes[cat]
		if !ok {
			continue
		}
		for _, code := range top6 {
			b, ok := byCountry[code]
			if !ok {
				continue
			}
			tab.add(string(cat), countryName(code),
				fmtBytes(b.P5), fmtBytes(b.P25), fmtBytes(b.P50), fmtBytes(b.P75), fmtBytes(b.P95))
		}
	}
	sb.WriteString(tab.String())
	return sb.String()
}

// Table3 is the Appendix A service/regex listing.
type Table3 struct {
	Rows []Table3Row
}

// Table3Row is one service of Table 3.
type Table3Row struct {
	Service  string
	Category services.Category
	Patterns []string
}

// BuildTable3 materializes the classifier's rule table.
func BuildTable3() Table3 {
	var t Table3
	for _, svc := range services.Services() {
		t.Rows = append(t.Rows, Table3Row{Service: svc.Name, Category: svc.Category, Patterns: svc.Patterns()})
	}
	return t
}

// Render prints the rule table in the paper's three-column layout.
func (t Table3) Render() string {
	tab := &table{header: []string{"Service", "Regexp", "Category"}}
	for _, r := range t.Rows {
		tab.add(r.Service, "["+strings.Join(r.Patterns, ", ")+"]", string(r.Category))
	}
	return "Table 3: regular expressions used to identify services and categories\n" + tab.String()
}
