package report

import (
	"fmt"
	"sort"
	"strings"

	"satwatch/internal/analytics"
	"satwatch/internal/geo"
	"satwatch/internal/netsim"
)

// Fig8a is the satellite-RTT distribution per country, night vs peak.
type Fig8a struct {
	Night map[geo.CountryCode]*analytics.Sample // seconds
	Peak  map[geo.CountryCode]*analytics.Sample
}

// BuildFig8a computes the satellite-RTT CDFs from TLS-measured flows.
func BuildFig8a(ds *analytics.Dataset) Fig8a {
	night, peak := ds.SatRTTSamples()
	out := Fig8a{Night: map[geo.CountryCode]*analytics.Sample{}, Peak: map[geo.CountryCode]*analytics.Sample{}}
	for code, xs := range night {
		out.Night[code] = analytics.NewSample(xs)
	}
	for code, xs := range peak {
		out.Peak[code] = analytics.NewSample(xs)
	}
	return out
}

// Render prints the quartiles the paper's dashed/dotted lines mark.
func (f Fig8a) Render() string {
	tab := &table{header: []string{"Country", "window", "P25", "median", "P75", "P(<1s)", "P(>2s)"}}
	for _, code := range top6 {
		for _, w := range []struct {
			name string
			s    *analytics.Sample
		}{{"night", f.Night[code]}, {"peak", f.Peak[code]}} {
			if w.s == nil || w.s.Len() == 0 {
				continue
			}
			tab.add(countryName(code), w.name,
				fmt.Sprintf("%.2fs", w.s.Quantile(0.25)),
				fmt.Sprintf("%.2fs", w.s.Median()),
				fmt.Sprintf("%.2fs", w.s.Quantile(0.75)),
				fmtPct(100*w.s.CDF(1.0))+" %",
				fmtPct(100*w.s.CCDF(2.0))+" %")
		}
	}
	return "Figure 8a: satellite-segment RTT per country (TLS handshake estimate)\n" + tab.String()
}

// Fig8bRow is one beam of Figure 8b.
type Fig8bRow struct {
	Beam       int
	Country    geo.CountryCode
	UtilNorm   float64 // peak utilization normalized to the busiest beam
	MedianRTTs float64 // median satellite RTT in seconds, peak window
	Samples    int
}

// Fig8b is the median satellite RTT per beam vs normalized utilization.
type Fig8b struct {
	Rows []Fig8bRow
}

// BuildFig8b joins per-beam RTTs with the simulator's beam-load stats.
func BuildFig8b(ds *analytics.Dataset, beams []netsim.BeamStat) Fig8b {
	byBeam := ds.SatRTTByBeam()
	maxUtil := 0.0
	for _, b := range beams {
		if b.PeakUtil > maxUtil {
			maxUtil = b.PeakUtil
		}
	}
	var rows []Fig8bRow
	for _, b := range beams {
		xs := byBeam[b.Beam]
		if len(xs) == 0 {
			continue
		}
		s := analytics.NewSample(xs)
		norm := 0.0
		if maxUtil > 0 {
			norm = b.PeakUtil / maxUtil
		}
		rows = append(rows, Fig8bRow{Beam: b.Beam, Country: b.Country,
			UtilNorm: norm, MedianRTTs: s.Median(), Samples: s.Len()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Beam < rows[j].Beam })
	return Fig8b{Rows: rows}
}

// Render prints the per-beam scatter as a table.
func (f Fig8b) Render() string {
	tab := &table{header: []string{"Beam", "Country", "util (norm)", "median sat RTT", "samples"}}
	for _, r := range f.Rows {
		tab.add(fmt.Sprintf("%d", r.Beam), countryName(r.Country),
			fmt.Sprintf("%.2f", r.UtilNorm), fmt.Sprintf("%.2fs", r.MedianRTTs),
			fmt.Sprintf("%d", r.Samples))
	}
	return "Figure 8b: median satellite RTT per beam vs normalized utilization (peak window)\n" + tab.String()
}

// Fig9 is the ground-segment RTT distribution per country.
type Fig9 struct {
	Samples map[geo.CountryCode]*analytics.Sample // seconds, volume-weighted
}

// BuildFig9 computes the ground-RTT CDFs.
func BuildFig9(ds *analytics.Dataset) Fig9 {
	raw := ds.GroundRTTSamples(true)
	out := Fig9{Samples: map[geo.CountryCode]*analytics.Sample{}}
	for code, xs := range raw {
		out.Samples[code] = analytics.NewSample(xs)
	}
	return out
}

// ShareBelow returns the share of a country's traffic with ground RTT
// below the threshold (seconds).
func (f Fig9) ShareBelow(code geo.CountryCode, seconds float64) float64 {
	s, ok := f.Samples[code]
	if !ok || s.Len() == 0 {
		return 0
	}
	return s.CDF(seconds)
}

// Render prints medians and the paper's bump landmarks.
func (f Fig9) Render() string {
	tab := &table{header: []string{"Country", "median", "P(<=20ms)", "P(<=50ms)", "P(<=120ms)", "P(>250ms)"}}
	for _, code := range top6 {
		s, ok := f.Samples[code]
		if !ok || s.Len() == 0 {
			continue
		}
		tab.add(countryName(code),
			fmtMs(s.Median()),
			fmtPct(100*s.CDF(0.020))+" %",
			fmtPct(100*s.CDF(0.050))+" %",
			fmtPct(100*s.CDF(0.120))+" %",
			fmtPct(100*s.CCDF(0.250))+" %")
	}
	return "Figure 9: ground-segment RTT per country (volume-weighted)\n" + tab.String()
}

// Fig11 is the download throughput analysis.
type Fig11 struct {
	// All/Night/Peak hold goodput samples (bit/s) per country for flows
	// of at least the size threshold.
	All   map[geo.CountryCode]*analytics.Sample
	Night map[geo.CountryCode]*analytics.Sample
	Peak  map[geo.CountryCode]*analytics.Sample
	// MinBytes is the flow-size threshold used.
	MinBytes int64
}

// BuildFig11 computes throughput distributions for bulk flows. The paper
// uses ≥10 MB; scaled runs may pass a smaller threshold.
func BuildFig11(ds *analytics.Dataset, minBytes int64) Fig11 {
	night, peak, all := ds.ThroughputSamples(minBytes)
	out := Fig11{
		All:      map[geo.CountryCode]*analytics.Sample{},
		Night:    map[geo.CountryCode]*analytics.Sample{},
		Peak:     map[geo.CountryCode]*analytics.Sample{},
		MinBytes: minBytes,
	}
	for code, xs := range all {
		out.All[code] = analytics.NewSample(xs)
	}
	for code, xs := range night {
		out.Night[code] = analytics.NewSample(xs)
	}
	for code, xs := range peak {
		out.Peak[code] = analytics.NewSample(xs)
	}
	return out
}

// Render prints the CCDF landmarks and night/peak medians.
func (f Fig11) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: download throughput per country (flows ≥ %s)\n", fmtBytes(float64(f.MinBytes)))
	tab := &table{header: []string{"Country", "median", "P90", "P(>8Mb/s)", "P(>25Mb/s)", "night med", "peak med"}}
	for _, code := range top6 {
		s, ok := f.All[code]
		if !ok || s.Len() == 0 {
			continue
		}
		nightMed, peakMed := "-", "-"
		if n, ok := f.Night[code]; ok && n.Len() > 0 {
			nightMed = fmtMbps(n.Median())
		}
		if p, ok := f.Peak[code]; ok && p.Len() > 0 {
			peakMed = fmtMbps(p.Median())
		}
		tab.add(countryName(code),
			fmtMbps(s.Median()), fmtMbps(s.Quantile(0.9)),
			fmtPct(100*s.CCDF(8e6))+" %", fmtPct(100*s.CCDF(25e6))+" %",
			nightMed, peakMed)
	}
	sb.WriteString(tab.String())
	return sb.String()
}
