package report

import (
	"strings"
	"testing"
)

func TestBuildSignatures(t *testing.T) {
	sig := BuildSignatures(handDataset())
	if len(sig.Rows) == 0 {
		t.Fatal("no signature rows from the hand dataset")
	}
	byCountry := map[string]SignatureRow{}
	for i, r := range sig.Rows {
		if i > 0 && sig.Rows[i-1].Country >= r.Country {
			t.Fatalf("rows not sorted by country at %d: %v", i, sig.Rows)
		}
		if r.N <= 0 || r.Min > r.P25 || r.P25 > r.Median || r.Median > r.P75 || r.P75 > r.P95 {
			t.Fatalf("non-monotonic fingerprint for %s: %+v", r.Country, r)
		}
		if r.Spread != r.P75-r.P25 {
			t.Fatalf("%s IQR %v != p75-p25", r.Country, r.Spread)
		}
		byCountry[string(r.Country)] = r
	}
	// The hand dataset's satellite RTTs all sit on a GEO bent-pipe floor.
	for code, r := range byCountry {
		if r.Class != "geo" {
			t.Errorf("%s classified %q, want geo (median %.3fs)", code, r.Class, r.Median)
		}
	}
	out := sig.Render()
	if !strings.Contains(out, "Region latency signatures") || !strings.Contains(out, "Congo") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestClassifyOrbit(t *testing.T) {
	cases := []struct {
		median float64
		want   string
	}{{0.550, "geo"}, {0.47, "geo"}, {0.030, "leo"}, {0.095, "leo"}, {0.250, "mixed"}}
	for _, c := range cases {
		if got := classifyOrbit(c.median); got != c.want {
			t.Errorf("classifyOrbit(%v) = %q, want %q", c.median, got, c.want)
		}
	}
}
