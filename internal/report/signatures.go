package report

import (
	"fmt"
	"sort"

	"satwatch/internal/analytics"
	"satwatch/internal/geo"
)

// SignatureRow is one country's satellite-RTT distribution fingerprint.
// The quantile fields are in seconds, like every latency in this package.
type SignatureRow struct {
	Country geo.CountryCode
	N       int
	Min     float64
	P25     float64
	Median  float64
	P75     float64
	P95     float64
	// Spread is the p75−p25 interquartile range: near zero for a static
	// GEO bent pipe, tens of milliseconds when passes sweep overhead.
	Spread float64
	// Class is the orbit family the fingerprint matches: "geo" when the
	// median sits on a ≳450 ms bent-pipe floor, "leo" when it is under
	// 100 ms, "mixed" otherwise.
	Class string
}

// Signatures is the region-level latency-signature experiment: a
// per-country satellite-RTT distribution fingerprint, in the spirit of
// the RTT-signature literature — the shape of the latency distribution
// alone identifies the access technology serving a region, without any
// ground truth about the operator.
type Signatures struct {
	Rows []SignatureRow
}

// classifyOrbit maps a median satellite RTT (seconds) to an orbit family.
func classifyOrbit(median float64) string {
	switch {
	case median >= 0.45:
		return "geo"
	case median <= 0.10:
		return "leo"
	default:
		return "mixed"
	}
}

// BuildSignatures computes each country's satellite-RTT fingerprint over
// all flows with a TLS-derived satellite RTT estimate.
func BuildSignatures(ds *analytics.Dataset) Signatures {
	byCountry := map[geo.CountryCode][]float64{}
	for _, f := range ds.Flows {
		if f.SatRTT <= 0 || f.Country == "" {
			continue
		}
		byCountry[f.Country] = append(byCountry[f.Country], f.SatRTT.Seconds())
	}
	var sig Signatures
	for code, xs := range byCountry {
		s := analytics.NewSample(xs)
		row := SignatureRow{
			Country: code,
			N:       s.Len(),
			Min:     s.Min(),
			P25:     s.Quantile(0.25),
			Median:  s.Median(),
			P75:     s.Quantile(0.75),
			P95:     s.Quantile(0.95),
		}
		row.Spread = row.P75 - row.P25
		row.Class = classifyOrbit(row.Median)
		sig.Rows = append(sig.Rows, row)
	}
	sort.Slice(sig.Rows, func(i, j int) bool { return sig.Rows[i].Country < sig.Rows[j].Country })
	return sig
}

// Render prints the fingerprint table.
func (s Signatures) Render() string {
	t := &table{header: []string{"Country", "Flows", "Min", "p25", "Median", "p75", "p95", "IQR", "Class"}}
	for _, r := range s.Rows {
		t.add(countryName(r.Country), fmt.Sprintf("%d", r.N), fmtMs(r.Min),
			fmtMs(r.P25), fmtMs(r.Median), fmtMs(r.P75), fmtMs(r.P95),
			fmtMs(r.Spread), r.Class)
	}
	return "Region latency signatures: per-country satellite-RTT fingerprints\n" + t.String()
}
