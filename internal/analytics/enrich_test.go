package analytics

import (
	"net/netip"
	"testing"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/netsim"
	"satwatch/internal/services"
	"satwatch/internal/tstat"
)

var (
	cdClient = netip.MustParseAddr("77.16.0.2") // inside the fake CD prefix
	esClient = netip.MustParseAddr("77.20.0.2") // inside the fake ES prefix
)

// handDataset builds a small dataset without running the simulator.
func handDataset() *Dataset {
	srvWhatsapp := cdn.ServerAddr("e1.whatsapp.net", cdn.RegionEuropeNear, 0)
	srvAfrica := cdn.ServerAddr("scooper.news", cdn.RegionAfrica, 0)
	out := &netsim.Output{
		Meta: map[netip.Addr]netsim.CustomerMeta{
			cdClient: {Country: "CD", Beam: 1, Multiplex: 20, Resolver: dnssim.ResolverGoogle},
			esClient: {Country: "ES", Beam: 10, Multiplex: 1, Resolver: dnssim.ResolverOperator},
		},
		CountryPrefixes: map[netip.Prefix]geo.CountryCode{
			netip.MustParsePrefix("77.16.0.0/16"): "CD",
			netip.MustParsePrefix("77.20.0.0/16"): "ES",
		},
	}
	mk := func(client netip.Addr, server netip.Addr, domain string, start time.Duration, down int64, sat time.Duration, ground time.Duration) tstat.FlowRecord {
		return tstat.FlowRecord{
			Client: client, Server: server, CPort: 1024, SPort: 443,
			Proto: tstat.ProtoHTTPS, Domain: domain,
			Start: start, End: start + 10*time.Second,
			BytesUp: 1000, BytesDown: down, PktsUp: 10, PktsDown: 100,
			SatRTT:    sat,
			GroundRTT: tstat.RTTStats{Samples: 3, Avg: ground, Min: ground, Max: ground},
		}
	}
	out.Flows = []tstat.FlowRecord{
		// Congo, 14:00 local (13:00 UTC, CD is UTC+1): peak window.
		mk(cdClient, srvWhatsapp, "e1.whatsapp.net", 13*time.Hour, 5<<20, 1500*time.Millisecond, 20*time.Millisecond),
		// Congo, 03:00 local (02:00 UTC): night window.
		mk(cdClient, srvAfrica, "scooper.news", 2*time.Hour, 1<<20, 600*time.Millisecond, 340*time.Millisecond),
		// Spain, 19:00 local (18:00 UTC): peak window.
		mk(esClient, srvWhatsapp, "e1.whatsapp.net", 18*time.Hour, 2<<20, 650*time.Millisecond, 18*time.Millisecond),
	}
	out.DNS = []tstat.DNSRecord{
		{Client: cdClient, Resolver: netip.MustParseAddr("8.8.8.8"), Query: "e1.whatsapp.net",
			T: 13 * time.Hour, ResponseTime: 22 * time.Millisecond},
		{Client: esClient, Resolver: netip.MustParseAddr("185.12.64.53"), Query: "www.google.com",
			T: 18 * time.Hour, ResponseTime: 4 * time.Millisecond},
	}
	return NewDataset(out, 1)
}

func TestEnrichment(t *testing.T) {
	ds := handDataset()
	if len(ds.Flows) != 3 {
		t.Fatalf("%d flows", len(ds.Flows))
	}
	f := ds.Flows[0]
	if f.Country != "CD" || !f.HasMeta || f.Meta.Beam != 1 {
		t.Fatalf("metadata join failed: %+v", f)
	}
	if f.Service != "Whatsapp" || f.Category != services.CategoryChat {
		t.Fatalf("service classification: %q/%q", f.Service, f.Category)
	}
	if f.Region != cdn.RegionEuropeNear {
		t.Fatalf("region recovery: %q", f.Region)
	}
	if ds.Flows[1].Region != cdn.RegionAfrica {
		t.Fatal("African region not recovered")
	}
}

func TestLocalHourAndWindows(t *testing.T) {
	// 13:00 UTC is 14:00 in Congo (UTC+1): peak window.
	if h := LocalHour(13*time.Hour, "CD"); h != 14 {
		t.Fatalf("CD local hour %d", h)
	}
	if !IsPeak(14) || IsNight(14) {
		t.Fatal("window classification broken")
	}
	if !IsNight(3) || IsPeak(3) {
		t.Fatal("night window broken")
	}
	// Unknown country: UTC.
	if h := LocalHour(13*time.Hour, "XX"); h != 13 {
		t.Fatalf("unknown-country hour %d", h)
	}
	// Day boundaries wrap.
	if h := LocalHour(23*time.Hour+30*time.Minute, "ZA"); h != 1 {
		t.Fatalf("wrap hour %d", h)
	}
	if DayOf(25*time.Hour) != 1 || DayOf(23*time.Hour) != 0 {
		t.Fatal("DayOf broken")
	}
}

func TestSatRTTWindowSplit(t *testing.T) {
	ds := handDataset()
	night, peak := ds.SatRTTSamples()
	if len(night["CD"]) != 1 || night["CD"][0] != 0.6 {
		t.Fatalf("CD night samples %v", night["CD"])
	}
	if len(peak["CD"]) != 1 || peak["CD"][0] != 1.5 {
		t.Fatalf("CD peak samples %v", peak["CD"])
	}
	if len(peak["ES"]) != 1 {
		t.Fatalf("ES peak samples %v", peak["ES"])
	}
}

func TestSatRTTByBeam(t *testing.T) {
	ds := handDataset()
	byBeam := ds.SatRTTByBeam()
	if len(byBeam[1]) != 1 {
		t.Fatalf("beam 1 samples %v", byBeam[1])
	}
}

func TestGroupByCustomerDay(t *testing.T) {
	ds := handDataset()
	aggs := ds.GroupByCustomerDay()
	if len(aggs) != 2 {
		t.Fatalf("%d customer-days", len(aggs))
	}
	cd := aggs[CustomerDay{Client: cdClient, Day: 0}]
	if cd == nil || cd.Flows != 2 {
		t.Fatalf("CD aggregate %+v", cd)
	}
	if !cd.Services["Whatsapp"] {
		t.Fatal("service presence lost")
	}
	if cd.CategoryBytes[services.CategoryChat] == 0 {
		t.Fatal("category bytes lost")
	}
}

func TestVolumeRollups(t *testing.T) {
	ds := handDataset()
	byProto := ds.VolumeByProtocol()
	if byProto[tstat.ProtoHTTPS] == 0 {
		t.Fatal("no HTTPS volume")
	}
	byCP := ds.VolumeByCountryProtocol()
	if byCP["CD"][tstat.ProtoHTTPS] <= byCP["ES"][tstat.ProtoHTTPS] {
		t.Fatal("per-country volumes wrong")
	}
	hourly := ds.HourlyVolume()
	if hourly["CD"][13] == 0 || hourly["CD"][2] == 0 {
		t.Fatal("hourly rollup lost volume")
	}
	if hourly["ES"][18] == 0 {
		t.Fatal("Spain evening volume missing")
	}
}

func TestGroundRTTSamplesWeighting(t *testing.T) {
	ds := handDataset()
	unweighted := ds.GroundRTTSamples(false)
	weighted := ds.GroundRTTSamples(true)
	if len(unweighted["CD"]) != 2 {
		t.Fatalf("CD unweighted %d", len(unweighted["CD"]))
	}
	// The 5 MiB flow gets more weight than the 1 MiB one.
	if len(weighted["CD"]) <= len(unweighted["CD"]) {
		t.Fatal("volume weighting had no effect")
	}
}

func TestThroughputSamples(t *testing.T) {
	ds := handDataset()
	_, peak, all := ds.ThroughputSamples(1 << 20)
	if len(all["CD"]) != 2 || len(all["ES"]) != 1 {
		t.Fatalf("bulk flows: CD=%d ES=%d", len(all["CD"]), len(all["ES"]))
	}
	// 5 MiB over 10s ≈ 4.2 Mb/s.
	want := float64(5<<20) * 8 / 10
	got := peak["CD"][0]
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("goodput %v, want ≈%v", got, want)
	}
	// Threshold filters.
	_, _, none := ds.ThroughputSamples(100 << 20)
	if len(none["CD"]) != 0 {
		t.Fatal("threshold not applied")
	}
}

func TestResolverAggregates(t *testing.T) {
	ds := handDataset()
	usage := ds.ResolverUsage()
	if usage["CD"][dnssim.ResolverGoogle] != 1 {
		t.Fatalf("CD usage %v", usage["CD"])
	}
	if usage["ES"][dnssim.ResolverOperator] != 1 {
		t.Fatalf("ES usage %v", usage["ES"])
	}
	times := ds.ResolverResponseTimes()
	if len(times[dnssim.ResolverGoogle]) != 1 || times[dnssim.ResolverGoogle][0] != 0.022 {
		t.Fatalf("google times %v", times[dnssim.ResolverGoogle])
	}
}

func TestGroundRTTByDomainResolver(t *testing.T) {
	ds := handDataset()
	cells := ds.GroundRTTByDomainResolver()
	key := DomainResolverKey{Country: "CD", Resolver: dnssim.ResolverGoogle, Domain: "whatsapp.net"}
	if len(cells[key]) != 1 {
		t.Fatalf("cell %v missing: %v", key, cells)
	}
	key2 := DomainResolverKey{Country: "CD", Resolver: dnssim.ResolverGoogle, Domain: "scooper.news"}
	if len(cells[key2]) != 1 {
		t.Fatal("second-level domain aggregation broken")
	}
}
