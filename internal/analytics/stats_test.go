package analytics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	s := NewSample(nil)
	if s.Len() != 0 || s.Median() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample not all-zero")
	}
	if s.CDF(5) != 0 || s.CCDF(5) != 1 {
		t.Fatal("empty CDF wrong")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample([]float64{5, 1, 3, 2, 4})
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("median %v", s.Median())
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	// Interpolation: q=0.25 over 5 sorted values = index 1 exactly.
	if got := s.Quantile(0.25); got != 2 {
		t.Fatalf("q25 %v", got)
	}
	if got := s.Quantile(0.125); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("q12.5 %v, want 1.5", got)
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("mean %v", got)
	}
}

func TestSampleDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewSample(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestCDFAndCCDF(t *testing.T) {
	s := NewSample([]float64{1, 2, 2, 3})
	cases := []struct{ x, cdf float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.CDF(c.x); math.Abs(got-c.cdf) > 1e-12 {
			t.Errorf("CDF(%v)=%v, want %v", c.x, got, c.cdf)
		}
		if got := s.CCDF(c.x); math.Abs(got-(1-c.cdf)) > 1e-12 {
			t.Errorf("CCDF(%v)=%v, want %v", c.x, got, 1-c.cdf)
		}
	}
}

func TestBoxplot(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	b := NewSample(xs).Box()
	if b.N != 100 {
		t.Fatalf("N %d", b.N)
	}
	if b.P50 < 50 || b.P50 > 51 {
		t.Fatalf("median %v", b.P50)
	}
	if !(b.P5 < b.P25 && b.P25 < b.P50 && b.P50 < b.P75 && b.P75 < b.P95) {
		t.Fatalf("box not ordered: %+v", b)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	s := NewSample([]float64{9, 1, 7, 3, 5, 2, 8})
	f := func(a, b uint8) bool {
		q1 := float64(a) / 255
		q2 := float64(b) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return s.Quantile(q1) <= s.Quantile(q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileInverseProperty(t *testing.T) {
	xs := []float64{2, 4, 4, 8, 16, 23, 42}
	s := NewSample(xs)
	// For every observation x: CDF(x) ≥ rank/n and Quantile(CDF(x)) ≥ x is
	// not generally true with interpolation, but CDF must be a
	// non-decreasing step function hitting 1 at the max.
	prev := 0.0
	for x := 0.0; x <= 50; x += 0.5 {
		c := s.CDF(x)
		if c < prev {
			t.Fatalf("CDF decreasing at %v", x)
		}
		prev = c
	}
	if s.CDF(42) != 1 {
		t.Fatal("CDF(max) != 1")
	}
}
