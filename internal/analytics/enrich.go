package analytics

import (
	"net/netip"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/geo"
	"satwatch/internal/netsim"
	"satwatch/internal/services"
	"satwatch/internal/tstat"
)

// Flow is an enriched flow record: the raw probe output joined with the
// operator metadata and the service classification (§3.1).
type Flow struct {
	tstat.FlowRecord
	Country  geo.CountryCode
	Meta     netsim.CustomerMeta
	HasMeta  bool
	Service  string // services registry name ("" when untracked)
	Category services.Category
	Region   cdn.Region // hosting region recovered from the server address
}

// Dataset is the enriched view of one simulation (or capture) output.
type Dataset struct {
	Flows []Flow
	DNS   []tstat.DNSRecord
	Meta  map[netip.Addr]netsim.CustomerMeta
	// Prefixes maps anonymized customer prefixes to countries, for
	// records whose exact customer is unknown.
	Prefixes map[netip.Prefix]geo.CountryCode
	Days     int
}

// NewDataset enriches a simulation output.
func NewDataset(out *netsim.Output, days int) *Dataset {
	ds := &Dataset{DNS: out.DNS, Meta: out.Meta, Prefixes: out.CountryPrefixes, Days: days}
	ds.Flows = make([]Flow, 0, len(out.Flows))
	for _, rec := range out.Flows {
		ds.Flows = append(ds.Flows, ds.enrich(rec))
	}
	return ds
}

func (ds *Dataset) enrich(rec tstat.FlowRecord) Flow {
	f := Flow{FlowRecord: rec}
	if meta, ok := ds.Meta[rec.Client]; ok {
		f.Meta = meta
		f.HasMeta = true
		f.Country = meta.Country
	} else {
		f.Country, _ = ds.CountryOf(rec.Client)
	}
	if rec.Domain != "" {
		if svc, ok := services.Classify(rec.Domain); ok {
			f.Service = svc.Name
			f.Category = svc.Category
		}
	}
	f.Region, _ = cdn.RegionOf(rec.Server)
	return f
}

// CountryOf resolves an anonymized customer address to its country via the
// prefix-preserving anonymization (§2.3: Crypto-PAn "preserves the subnet
// structure", §3.1: mapping provided by the operator).
func (ds *Dataset) CountryOf(addr netip.Addr) (geo.CountryCode, bool) {
	for p, code := range ds.Prefixes {
		if p.Contains(addr) {
			return code, true
		}
	}
	return "", false
}

// LocalHour returns the customer-local hour of a timestamp.
func LocalHour(t time.Duration, country geo.CountryCode) int {
	c, ok := geo.ByCode(country)
	tz := 0
	if ok {
		tz = c.TZOffset
	}
	h := int(t/time.Hour) + tz
	return ((h % 24) + 24) % 24
}

// UTCHour returns the UTC hour-of-day of a timestamp.
func UTCHour(t time.Duration) int { return int(t/time.Hour) % 24 }

// DayOf returns the simulation day index of a timestamp.
func DayOf(t time.Duration) int { return int(t / (24 * time.Hour)) }

// IsNight reports whether the local hour falls in the paper's night window
// (02:00-05:00 local, Figure 8a).
func IsNight(localHour int) bool { return localHour >= 2 && localHour < 5 }

// IsPeak reports whether the local hour falls in the paper's peak window
// (13:00-20:00 local, Figure 8a).
func IsPeak(localHour int) bool { return localHour >= 13 && localHour < 20 }

// CustomerDay keys per-customer-per-day aggregates.
type CustomerDay struct {
	Client netip.Addr
	Day    int
}

// PerCustomerDay aggregates the Figure 5 quantities.
type PerCustomerDay struct {
	Flows     int
	BytesDown int64
	BytesUp   int64
	Country   geo.CountryCode
	// Services seen this customer-day (by service name).
	Services map[string]bool
	// CategoryBytes accumulates down+up volume per category.
	CategoryBytes map[services.Category]int64
}

// ActiveFlowThreshold is the paper's active-customer definition: at least
// 250 flows in a day (§4).
const ActiveFlowThreshold = 250

// GroupByCustomerDay builds the per-customer-day aggregates.
func (ds *Dataset) GroupByCustomerDay() map[CustomerDay]*PerCustomerDay {
	out := map[CustomerDay]*PerCustomerDay{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		key := CustomerDay{Client: f.Client, Day: DayOf(f.Start)}
		agg, ok := out[key]
		if !ok {
			agg = &PerCustomerDay{Country: f.Country,
				Services:      map[string]bool{},
				CategoryBytes: map[services.Category]int64{}}
			out[key] = agg
		}
		agg.Flows++
		agg.BytesDown += f.BytesDown
		agg.BytesUp += f.BytesUp
		if f.Service != "" {
			agg.Services[f.Service] = true
			agg.CategoryBytes[f.Category] += f.BytesDown + f.BytesUp
		}
	}
	return out
}

// VolumeByProtocol returns total (up+down) bytes per protocol class
// (Table 1).
func (ds *Dataset) VolumeByProtocol() map[tstat.Protocol]int64 {
	out := map[tstat.Protocol]int64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		out[f.Proto] += f.BytesUp + f.BytesDown
	}
	return out
}

// VolumeByCountryProtocol returns bytes per (country, protocol), Figure 3.
func (ds *Dataset) VolumeByCountryProtocol() map[geo.CountryCode]map[tstat.Protocol]int64 {
	out := map[geo.CountryCode]map[tstat.Protocol]int64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		m, ok := out[f.Country]
		if !ok {
			m = map[tstat.Protocol]int64{}
			out[f.Country] = m
		}
		m[f.Proto] += f.BytesUp + f.BytesDown
	}
	return out
}

// CustomersByCountry counts distinct customers per country (from metadata).
func (ds *Dataset) CustomersByCountry() map[geo.CountryCode]int {
	out := map[geo.CountryCode]int{}
	for _, meta := range ds.Meta {
		out[meta.Country]++
	}
	return out
}

// HourlyVolume returns, per country, the total bytes per UTC hour-of-day
// averaged over the observation days (Figure 4).
func (ds *Dataset) HourlyVolume() map[geo.CountryCode][24]float64 {
	acc := map[geo.CountryCode]*[24]float64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		a, ok := acc[f.Country]
		if !ok {
			a = &[24]float64{}
			acc[f.Country] = a
		}
		a[UTCHour(f.Start)] += float64(f.BytesUp + f.BytesDown)
	}
	out := map[geo.CountryCode][24]float64{}
	for code, a := range acc {
		out[code] = *a
	}
	return out
}

// SatRTTSamples returns satellite-RTT samples (seconds) per country, split
// into night and peak windows by customer-local start hour (Figure 8a).
func (ds *Dataset) SatRTTSamples() (night, peak map[geo.CountryCode][]float64) {
	night = map[geo.CountryCode][]float64{}
	peak = map[geo.CountryCode][]float64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		if f.SatRTT <= 0 || f.Country == "" {
			continue
		}
		h := LocalHour(f.Start, f.Country)
		v := f.SatRTT.Seconds()
		switch {
		case IsNight(h):
			night[f.Country] = append(night[f.Country], v)
		case IsPeak(h):
			peak[f.Country] = append(peak[f.Country], v)
		}
	}
	return night, peak
}

// SatRTTByBeam returns peak-window satellite-RTT samples per beam
// (Figure 8b), for flows with metadata.
func (ds *Dataset) SatRTTByBeam() map[int][]float64 {
	out := map[int][]float64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		if f.SatRTT <= 0 || !f.HasMeta {
			continue
		}
		if !IsPeak(LocalHour(f.Start, f.Country)) {
			continue
		}
		out[f.Meta.Beam] = append(out[f.Meta.Beam], f.SatRTT.Seconds())
	}
	return out
}

// GroundRTTSamples returns per-country ground-RTT samples in seconds,
// volume-weighted per flow (Figure 9 reads "share of traffic" on the y
// axis; weighting by flow bytes approximates it).
func (ds *Dataset) GroundRTTSamples(volumeWeighted bool) map[geo.CountryCode][]float64 {
	out := map[geo.CountryCode][]float64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		if f.GroundRTT.Samples == 0 || f.Country == "" {
			continue
		}
		v := f.GroundRTT.Avg.Seconds()
		n := 1
		if volumeWeighted {
			// One sample per 256 KiB of flow volume, capped, keeps big
			// flows from exploding the sample set.
			n = int((f.BytesDown + f.BytesUp) / (256 << 10))
			if n < 1 {
				n = 1
			}
			if n > 64 {
				n = 64
			}
		}
		for j := 0; j < n; j++ {
			out[f.Country] = append(out[f.Country], v)
		}
	}
	return out
}

// ThroughputSamples returns download goodput samples in bit/s per country
// for flows carrying at least minBytes, split night/peak (Figure 11).
// Goodput is bytes over first-to-last segment time (§6.5).
func (ds *Dataset) ThroughputSamples(minBytes int64) (night, peak, all map[geo.CountryCode][]float64) {
	night = map[geo.CountryCode][]float64{}
	peak = map[geo.CountryCode][]float64{}
	all = map[geo.CountryCode][]float64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		if f.BytesDown < minBytes || f.Country == "" {
			continue
		}
		d := f.Duration().Seconds()
		if d <= 0 {
			continue
		}
		bps := float64(f.BytesDown) * 8 / d
		all[f.Country] = append(all[f.Country], bps)
		h := LocalHour(f.Start, f.Country)
		switch {
		case IsNight(h):
			night[f.Country] = append(night[f.Country], bps)
		case IsPeak(h):
			peak[f.Country] = append(peak[f.Country], bps)
		}
	}
	return night, peak, all
}
