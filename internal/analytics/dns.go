package analytics

import (
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

// ResolverUsage aggregates DNS transactions per (country, resolver):
// Figure 10's left matrix.
func (ds *Dataset) ResolverUsage() map[geo.CountryCode]map[dnssim.ResolverID]int {
	out := map[geo.CountryCode]map[dnssim.ResolverID]int{}
	for _, d := range ds.DNS {
		country, ok := ds.CountryOf(d.Client)
		if !ok {
			continue
		}
		m, ok := out[country]
		if !ok {
			m = map[dnssim.ResolverID]int{}
			out[country] = m
		}
		m[dnssim.ByAddr(d.Resolver).ID]++
	}
	return out
}

// ResolverResponseTimes collects response-time samples in seconds per
// resolver: Figure 10's rightmost column.
func (ds *Dataset) ResolverResponseTimes() map[dnssim.ResolverID][]float64 {
	out := map[dnssim.ResolverID][]float64{}
	for _, d := range ds.DNS {
		id := dnssim.ByAddr(d.Resolver).ID
		out[id] = append(out[id], d.ResponseTime.Seconds())
	}
	return out
}

// DomainResolverKey keys the Table 2/4/5 ground-RTT aggregates.
type DomainResolverKey struct {
	Country  geo.CountryCode
	Resolver dnssim.ResolverID
	Domain   string // second-level domain
}

// GroundRTTByDomainResolver aggregates per-flow average ground RTTs
// (seconds) by (customer country, customer resolver, second-level server
// domain) — the paper's Tables 2, 4 and 5. The resolver comes from the
// operator metadata join, as each customer's devices stick to one
// configured resolver.
func (ds *Dataset) GroundRTTByDomainResolver() map[DomainResolverKey][]float64 {
	out := map[DomainResolverKey][]float64{}
	for i := range ds.Flows {
		f := &ds.Flows[i]
		if !f.HasMeta || f.Domain == "" || f.GroundRTT.Samples == 0 {
			continue
		}
		key := DomainResolverKey{
			Country:  f.Country,
			Resolver: f.Meta.Resolver,
			Domain:   services.SecondLevel(f.Domain),
		}
		out[key] = append(out[key], f.GroundRTT.Avg.Seconds())
	}
	return out
}

// ServiceUsersByCountry counts, per (service, country), the number of
// customer-days on which the service was used, plus the total active
// customer-days per country — the Figure 6 numerator and denominator.
func (ds *Dataset) ServiceUsersByCountry() (use map[string]map[geo.CountryCode]int, activeDays map[geo.CountryCode]int) {
	use = map[string]map[geo.CountryCode]int{}
	activeDays = map[geo.CountryCode]int{}
	for _, agg := range ds.GroupByCustomerDay() {
		if agg.Flows < ActiveFlowThreshold {
			// Require a minimum of activity before counting the day;
			// idle CPE telemetry days would dilute penetration.
			continue
		}
		activeDays[agg.Country]++
		for svc := range agg.Services {
			m, ok := use[svc]
			if !ok {
				m = map[geo.CountryCode]int{}
				use[svc] = m
			}
			m[agg.Country]++
		}
	}
	return use, activeDays
}
