// Package analytics is the post-processing stage of the pipeline (the
// paper's §3.1 "Hadoop/Spark" step): it enriches anonymized flow records
// with operator metadata (country, beam, plan, archetype), classifies
// server domains into services and categories, and provides the
// distribution tooling (quantiles, CDFs, CCDFs, boxplots, hourly rollups)
// the experiments are built on.
package analytics

import (
	"math"
	"sort"
)

// Sample is a set of float64 observations with quantile helpers. Create it
// with NewSample (which sorts once); all queries are O(log n) after that.
type Sample struct {
	sorted []float64
}

// NewSample copies and sorts the observations.
func NewSample(xs []float64) *Sample {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &Sample{sorted: s}
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.sorted) }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.sorted {
		sum += x
	}
	return sum / float64(len(s.sorted))
}

// Quantile returns the q-quantile (0<=q<=1) with linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	f := pos - float64(lo)
	return s.sorted[lo]*(1-f) + s.sorted[hi]*f
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CDF returns P(X <= x).
func (s *Sample) CDF(x float64) float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(n)
}

// CCDF returns P(X > x) — the paper's Figure 5/11 axis.
func (s *Sample) CCDF(x float64) float64 { return 1 - s.CDF(x) }

// Boxplot summarizes the sample the way the paper's Figure 7 boxes do:
// whiskers at P5/P95, box at P25/P75, line at the median.
type Boxplot struct {
	P5, P25, P50, P75, P95 float64
	N                      int
}

// Box computes the Figure 7 summary.
func (s *Sample) Box() Boxplot {
	return Boxplot{
		P5:  s.Quantile(0.05),
		P25: s.Quantile(0.25),
		P50: s.Quantile(0.50),
		P75: s.Quantile(0.75),
		P95: s.Quantile(0.95),
		N:   s.Len(),
	}
}

// Values returns the sorted observations (read-only view).
func (s *Sample) Values() []float64 { return s.sorted }
