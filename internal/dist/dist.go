// Package dist provides the deterministic random-number plumbing and the
// statistical distributions used by the workload generator and the network
// simulator.
//
// All sampling goes through *Rand so that a single 64-bit seed reproduces an
// entire run. Sub-components derive independent streams with Fork, keyed by
// a label, so adding a new consumer does not perturb existing streams.
package dist

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random source. It wraps math/rand/v2's PCG
// generator and adds the distribution samplers used across the project.
// The originating seed material is retained so Fork can derive independent
// streams that do not depend on how much the parent has been consumed.
type Rand struct {
	src  *rand.Rand
	seed uint64
}

// NewRand returns a Rand seeded from seed.
func NewRand(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)), seed: seed}
}

// Fork derives an independent deterministic stream keyed by label.
// Forking the same parent with the same label always yields the same stream,
// regardless of how much the parent has been consumed.
func (r *Rand) Fork(label string) *Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	k := h.Sum64()
	return NewRand(r.seed ^ k ^ 0xd1342543de82ef95)
}

// ForkN derives an independent stream keyed by label and an index, for
// per-entity streams (one per customer, per beam, ...).
func (r *Rand) ForkN(label string, n uint64) *Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	k := h.Sum64() ^ ((n + 1) * 0x9e3779b97f4a7c15)
	return NewRand(r.seed ^ k ^ 0xaf251af3b0f025b5)
}

// Float64 returns a uniform sample in [0,1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample in [0,n). n must be > 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns a rate-1 exponential sample.
func (r *Rand) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Perm returns a deterministic random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Exponential samples an exponential with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.src.ExpFloat64() * mean
}

// LogNormal describes a log-normal distribution by the underlying normal's
// mu and sigma (of the log).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// LogNormalFromMedian builds a LogNormal with the given median and sigma of
// the log. The median of a log-normal is exp(mu).
func LogNormalFromMedian(median, sigma float64) LogNormal {
	if median <= 0 {
		median = math.SmallestNonzeroFloat64
	}
	return LogNormal{Mu: math.Log(median), Sigma: sigma}
}

// Mean returns the distribution mean exp(mu + sigma^2/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Median returns exp(mu).
func (d LogNormal) Median() float64 { return math.Exp(d.Mu) }

// Quantile returns the q-quantile (0<q<1) using the normal quantile of the log.
func (d LogNormal) Quantile(q float64) float64 {
	return math.Exp(d.Mu + d.Sigma*normQuantile(q))
}

// Sample draws one value.
func (d LogNormal) Sample(r *Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// Pareto is a bounded Pareto distribution on [Min, Max] with shape Alpha.
// Bounding keeps single samples from dominating small simulated populations
// while preserving the heavy tail the paper's volume distributions show.
type Pareto struct {
	Min   float64
	Max   float64
	Alpha float64
}

// Sample draws one value via inverse-CDF of the bounded Pareto.
func (p Pareto) Sample(r *Rand) float64 {
	if p.Min <= 0 || p.Max <= p.Min {
		return p.Min
	}
	a := p.Alpha
	if a <= 0 {
		a = 1
	}
	u := r.Float64()
	la, ha := math.Pow(p.Min, a), math.Pow(p.Max, a)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/a)
	if x < p.Min {
		x = p.Min
	}
	if x > p.Max {
		x = p.Max
	}
	return x
}

// normQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9), enough for reporting quantiles.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormQuantile exposes the inverse standard normal CDF.
func NormQuantile(p float64) float64 { return normQuantile(p) }
