package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted([]string{}, []float64{}); err == nil {
		t.Fatal("empty chooser accepted")
	}
	if _, err := NewWeighted([]string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewWeighted([]string{"a"}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewWeighted([]string{"a"}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := NewWeighted([]string{"a", "b"}, []float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestWeightedProportions(t *testing.T) {
	w := MustWeighted([]string{"a", "b", "c"}, []float64{1, 2, 7})
	r := NewRand(5)
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	for item, want := range map[string]float64{"a": 0.1, "b": 0.2, "c": 0.7} {
		got := float64(counts[item]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("item %s frequency %.3f, want %.2f", item, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	w := MustWeighted([]string{"never", "always"}, []float64{0, 1})
	r := NewRand(6)
	for i := 0; i < 10000; i++ {
		if w.Sample(r) == "never" {
			t.Fatal("zero-weight item sampled")
		}
	}
}

func TestWeightedWeightAccessor(t *testing.T) {
	w := MustWeighted([]int{1, 2}, []float64{3, 1})
	if math.Abs(w.Weight(0)-0.75) > 1e-12 || math.Abs(w.Weight(1)-0.25) > 1e-12 {
		t.Fatalf("weights %.3f/%.3f, want 0.75/0.25", w.Weight(0), w.Weight(1))
	}
	if w.Len() != 2 {
		t.Fatalf("Len %d, want 2", w.Len())
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z, err := NewZipf(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(8)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[4] || counts[4] <= counts[9] {
		t.Fatalf("zipf counts not rank-ordered: %v", counts)
	}
	// Rank 0 over rank 1 should be ~2x for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("rank0/rank1 ratio %.2f, want ≈2", ratio)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(5, 0); err == nil {
		t.Fatal("s=0 accepted")
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical([]float64{0.5}, []float64{1}); err == nil {
		t.Fatal("single knot accepted")
	}
	if _, err := NewEmpirical([]float64{0.2, 0.1}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing levels accepted")
	}
	if _, err := NewEmpirical([]float64{0.1, 0.2}, []float64{2, 1}); err == nil {
		t.Fatal("decreasing values accepted")
	}
	if _, err := NewEmpirical([]float64{0, 0.5}, []float64{1, 2}); err == nil {
		t.Fatal("level 0 accepted")
	}
}

func TestEmpiricalInterpolation(t *testing.T) {
	e, err := NewEmpirical([]float64{0.25, 0.75}, []float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Quantile(0.5); math.Abs(got-20) > 1e-12 {
		t.Fatalf("Quantile(0.5)=%v, want 20", got)
	}
	if got := e.Quantile(0.01); got != 10 {
		t.Fatalf("below first knot: %v, want clamp to 10", got)
	}
	if got := e.Quantile(0.99); got != 30 {
		t.Fatalf("above last knot: %v, want clamp to 30", got)
	}
}

func TestEmpiricalQuantileMonotoneProperty(t *testing.T) {
	e, err := NewEmpirical([]float64{0.1, 0.5, 0.9}, []float64{1, 5, 100})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		p1 := float64(a) / 65536
		p2 := float64(b) / 65536
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return e.Quantile(p1) <= e.Quantile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalSampleWithinRange(t *testing.T) {
	e, _ := NewEmpirical([]float64{0.05, 0.95}, []float64{3, 7})
	r := NewRand(10)
	for i := 0; i < 10000; i++ {
		x := e.Sample(r)
		if x < 3 || x > 7 {
			t.Fatalf("sample %v outside knot range", x)
		}
	}
}
