package dist

import (
	"math"
	"testing"
	"time"
)

func eveningProfile() *Diurnal {
	var w [24]float64
	for h := range w {
		w[h] = 1
	}
	w[19] = 10 // evening prime time
	w[20] = 8
	return MustDiurnal(w)
}

func TestDiurnalValidation(t *testing.T) {
	var zero [24]float64
	if _, err := NewDiurnal(zero); err == nil {
		t.Fatal("all-zero profile accepted")
	}
	var neg [24]float64
	neg[3] = -1
	neg[4] = 1
	if _, err := NewDiurnal(neg); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestDiurnalPeakAndIntensity(t *testing.T) {
	d := eveningProfile()
	if d.PeakHour() != 19 {
		t.Fatalf("peak hour %d, want 19", d.PeakHour())
	}
	if d.Intensity(19) != 1 {
		t.Fatalf("peak intensity %v, want 1", d.Intensity(19))
	}
	if got := d.Intensity(3); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("off-peak intensity %v, want 0.1", got)
	}
	// Hour indices wrap.
	if d.Intensity(19+24) != d.Intensity(19) || d.Intensity(-5) != d.Intensity(19) {
		t.Fatal("hour wrapping broken")
	}
}

func TestDiurnalSharesSumToOne(t *testing.T) {
	d := eveningProfile()
	sum := 0.0
	for h := 0; h < 24; h++ {
		sum += d.Share(h)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestDiurnalSampleDistribution(t *testing.T) {
	d := eveningProfile()
	r := NewRand(21)
	counts := make([]int, 24)
	const n = 100000
	for i := 0; i < n; i++ {
		tod := d.SampleTimeOfDay(r)
		if tod < 0 || tod >= 24*time.Hour {
			t.Fatalf("time of day %v outside a day", tod)
		}
		counts[int(tod/time.Hour)]++
	}
	for h := 0; h < 24; h++ {
		got := float64(counts[h]) / n
		if math.Abs(got-d.Share(h)) > 0.01 {
			t.Fatalf("hour %d frequency %.4f, want %.4f", h, got, d.Share(h))
		}
	}
}

func TestDiurnalShifted(t *testing.T) {
	d := eveningProfile() // local peak at 19
	utc := d.Shifted(2)   // population at UTC+2
	// Their local 19:00 happens at 17:00 UTC.
	if utc.PeakHour() != 17 {
		t.Fatalf("shifted peak at UTC hour %d, want 17", utc.PeakHour())
	}
	// A zero shift is the identity.
	same := d.Shifted(0)
	for h := 0; h < 24; h++ {
		if same.Share(h) != d.Share(h) {
			t.Fatal("Shifted(0) changed the profile")
		}
	}
	// Shifting by -24 is also the identity.
	wrap := d.Shifted(-24)
	for h := 0; h < 24; h++ {
		if wrap.Share(h) != d.Share(h) {
			t.Fatal("Shifted(-24) changed the profile")
		}
	}
}
