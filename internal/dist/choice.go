package dist

import (
	"fmt"
	"math"
	"sort"
)

// Weighted selects among a fixed set of alternatives with the given weights.
// Weights need not sum to one; negative weights are rejected.
type Weighted[T any] struct {
	items []T
	cum   []float64
	total float64
}

// NewWeighted builds a weighted chooser. It returns an error when the inputs
// are mismatched, empty, or contain a negative or non-finite weight.
func NewWeighted[T any](items []T, weights []float64) (*Weighted[T], error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("dist: weighted chooser needs at least one item")
	}
	if len(items) != len(weights) {
		return nil, fmt.Errorf("dist: %d items but %d weights", len(items), len(weights))
	}
	w := &Weighted[T]{items: append([]T(nil), items...), cum: make([]float64, len(weights))}
	for i, x := range weights {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("dist: invalid weight %v at index %d", x, i)
		}
		w.total += x
		w.cum[i] = w.total
	}
	if w.total <= 0 {
		return nil, fmt.Errorf("dist: all weights are zero")
	}
	return w, nil
}

// MustWeighted is NewWeighted that panics on error, for static tables.
func MustWeighted[T any](items []T, weights []float64) *Weighted[T] {
	w, err := NewWeighted(items, weights)
	if err != nil {
		panic(err)
	}
	return w
}

// Sample draws one item proportionally to its weight.
func (w *Weighted[T]) Sample(r *Rand) T {
	x := r.Float64() * w.total
	i := sort.SearchFloat64s(w.cum, x)
	if i >= len(w.items) {
		i = len(w.items) - 1
	}
	return w.items[i]
}

// Len returns the number of alternatives.
func (w *Weighted[T]) Len() int { return len(w.items) }

// Items returns the alternatives in declaration order.
func (w *Weighted[T]) Items() []T { return w.items }

// Weight returns the normalized probability of item i.
func (w *Weighted[T]) Weight(i int) float64 {
	prev := 0.0
	if i > 0 {
		prev = w.cum[i-1]
	}
	return (w.cum[i] - prev) / w.total
}

// Zipf ranks n alternatives with probability proportional to 1/rank^s.
// It is used for domain popularity within a service.
type Zipf struct {
	w *Weighted[int]
}

// NewZipf builds a Zipf chooser over ranks [0,n) with exponent s (s>0).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: zipf needs n > 0, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("dist: zipf needs s > 0, got %v", s)
	}
	items := make([]int, n)
	weights := make([]float64, n)
	for i := range items {
		items[i] = i
		weights[i] = 1 / math.Pow(float64(i+1), s)
	}
	w, err := NewWeighted(items, weights)
	if err != nil {
		return nil, err
	}
	return &Zipf{w: w}, nil
}

// Sample draws a rank in [0,n).
func (z *Zipf) Sample(r *Rand) int { return z.w.Sample(r) }

// Empirical is a piecewise-linear inverse-CDF described by quantile knots.
// It is used where the paper reports a distribution only through a handful
// of quantiles.
type Empirical struct {
	q []float64 // quantile levels, ascending in (0,1)
	v []float64 // values at those levels, non-decreasing
}

// NewEmpirical builds an empirical distribution from (level, value) knots.
// Levels must be strictly increasing in (0,1); values must be non-decreasing.
func NewEmpirical(levels, values []float64) (*Empirical, error) {
	if len(levels) < 2 || len(levels) != len(values) {
		return nil, fmt.Errorf("dist: empirical needs >=2 matched knots")
	}
	for i := range levels {
		if levels[i] <= 0 || levels[i] >= 1 {
			return nil, fmt.Errorf("dist: empirical level %v out of (0,1)", levels[i])
		}
		if i > 0 && levels[i] <= levels[i-1] {
			return nil, fmt.Errorf("dist: empirical levels not increasing at %d", i)
		}
		if i > 0 && values[i] < values[i-1] {
			return nil, fmt.Errorf("dist: empirical values decreasing at %d", i)
		}
	}
	return &Empirical{q: append([]float64(nil), levels...), v: append([]float64(nil), values...)}, nil
}

// Quantile evaluates the inverse CDF at level p, linearly interpolating
// between knots and clamping outside the first/last knot.
func (e *Empirical) Quantile(p float64) float64 {
	if p <= e.q[0] {
		return e.v[0]
	}
	n := len(e.q)
	if p >= e.q[n-1] {
		return e.v[n-1]
	}
	i := sort.SearchFloat64s(e.q, p)
	// e.q[i-1] < p <= e.q[i]
	f := (p - e.q[i-1]) / (e.q[i] - e.q[i-1])
	return e.v[i-1] + f*(e.v[i]-e.v[i-1])
}

// Sample draws one value by inverse-CDF sampling.
func (e *Empirical) Sample(r *Rand) float64 { return e.Quantile(r.Float64()) }
