package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	if NewRand(7).Uint64() == NewRand(8).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestForkIndependentOfConsumption(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 50; i++ {
		a.Float64() // consume the parent
	}
	fa := a.Fork("workload")
	fb := b.Fork("workload")
	for i := 0; i < 20; i++ {
		if fa.Uint64() != fb.Uint64() {
			t.Fatal("forked stream depends on parent consumption")
		}
	}
}

func TestForkLabelsDiffer(t *testing.T) {
	r := NewRand(1)
	if r.Fork("a").Uint64() == r.Fork("b").Uint64() {
		t.Fatal("different labels gave identical streams")
	}
	if r.ForkN("x", 1).Uint64() == r.ForkN("x", 2).Uint64() {
		t.Fatal("different indices gave identical streams")
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(9)
	const mean = 250.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exponential(mean)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential mean %.2f, want ~%.0f", got, mean)
	}
	if r.Exponential(0) != 0 || r.Exponential(-5) != 0 {
		t.Fatal("non-positive mean should sample 0")
	}
}

func TestLogNormalMedianAndMean(t *testing.T) {
	d := LogNormalFromMedian(100, 1.0)
	if math.Abs(d.Median()-100) > 1e-9 {
		t.Fatalf("median %.3f, want 100", d.Median())
	}
	wantMean := 100 * math.Exp(0.5)
	if math.Abs(d.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean %.3f, want %.3f", d.Mean(), wantMean)
	}
	r := NewRand(11)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) < 100 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("%.3f of samples below the median, want ~0.5", frac)
	}
}

func TestLogNormalQuantileMonotone(t *testing.T) {
	d := LogNormalFromMedian(10, 2)
	prev := 0.0
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := d.Quantile(q)
		if v <= prev {
			t.Fatalf("quantile %.2f=%.4f not increasing past %.4f", q, v, prev)
		}
		prev = v
	}
}

func TestParetoBounds(t *testing.T) {
	p := Pareto{Min: 10, Max: 1000, Alpha: 1.2}
	r := NewRand(13)
	for i := 0; i < 10000; i++ {
		x := p.Sample(r)
		if x < p.Min || x > p.Max {
			t.Fatalf("sample %.3f outside [%v,%v]", x, p.Min, p.Max)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	p := Pareto{Min: 1, Max: 1e6, Alpha: 1.0}
	r := NewRand(17)
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Sample(r) > 100 {
			over++
		}
	}
	// For alpha=1 bounded Pareto with a huge max, P(X>100) ≈ 1/100.
	frac := float64(over) / n
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("tail fraction %.4f, want ≈0.01", frac)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.8413, 1.0}, {0.1587, -1.0}, {0.9772, 2.0},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 0.01 {
			t.Errorf("NormQuantile(%v)=%.4f, want %.2f", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("NormQuantile edges not infinite")
	}
}

func TestNormQuantileRoundTripProperty(t *testing.T) {
	// Phi(Phi^-1(p)) ≈ p via the error function.
	f := func(u uint16) bool {
		p := (float64(u) + 1) / 65537 // in (0,1)
		x := NormQuantile(p)
		phi := 0.5 * (1 + math.Erf(x/math.Sqrt2))
		return math.Abs(phi-p) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
