package dist

import (
	"fmt"
	"time"
)

// Diurnal is a 24-hour activity profile: a relative intensity per local hour.
// It drives both how much traffic a population offers in each hour and when
// individual sessions start.
type Diurnal struct {
	weights [24]float64
	total   float64
	peak    float64
}

// NewDiurnal builds a profile from 24 non-negative hourly weights.
func NewDiurnal(hourly [24]float64) (*Diurnal, error) {
	d := &Diurnal{weights: hourly}
	for h, w := range hourly {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative diurnal weight %v at hour %d", w, h)
		}
		d.total += w
		if w > d.peak {
			d.peak = w
		}
	}
	if d.total <= 0 {
		return nil, fmt.Errorf("dist: diurnal profile is all zero")
	}
	return d, nil
}

// MustDiurnal is NewDiurnal that panics on error, for static tables.
func MustDiurnal(hourly [24]float64) *Diurnal {
	d, err := NewDiurnal(hourly)
	if err != nil {
		panic(err)
	}
	return d
}

// Intensity returns the relative intensity of local hour h normalized so the
// peak hour is 1.0.
func (d *Diurnal) Intensity(h int) float64 {
	return d.weights[((h%24)+24)%24] / d.peak
}

// Share returns the fraction of a day's activity falling in local hour h.
func (d *Diurnal) Share(h int) float64 {
	return d.weights[((h%24)+24)%24] / d.total
}

// PeakHour returns the local hour with maximum intensity (first if tied).
func (d *Diurnal) PeakHour() int {
	best, bw := 0, -1.0
	for h, w := range d.weights {
		if w > bw {
			best, bw = h, w
		}
	}
	return best
}

// SampleTimeOfDay draws a time offset within a day, distributed according to
// the profile (uniform within the drawn hour).
func (d *Diurnal) SampleTimeOfDay(r *Rand) time.Duration {
	x := r.Float64() * d.total
	for h, w := range d.weights {
		if x < w {
			return time.Duration(h)*time.Hour + time.Duration(r.Float64()*float64(time.Hour))
		}
		x -= w
	}
	return 23*time.Hour + time.Duration(r.Float64()*float64(time.Hour))
}

// Shifted returns a copy of the profile shifted by tz hours: entry h of the
// result is the intensity at UTC hour h for a population whose local time is
// UTC+tz. Shifting by the timezone converts local profiles to UTC, matching
// the paper's Figure 4 ("countries in different time zones appear shifted").
func (d *Diurnal) Shifted(tz int) *Diurnal {
	var out [24]float64
	for utc := 0; utc < 24; utc++ {
		local := ((utc+tz)%24 + 24) % 24
		out[utc] = d.weights[local]
	}
	return MustDiurnal(out)
}
