package trace

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndFlowAreNoOps(t *testing.T) {
	var tr *Tracer
	if fl := tr.Start(1, 2, 3); fl != nil {
		t.Fatalf("nil tracer Start = %v, want nil", fl)
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("nil tracer Len = %d", n)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer Close: %v", err)
	}

	var fl *Flow
	fl.SetMeta(1, "GB", 3, "TCP/HTTPS", "x.test", time.Second)
	fl.SetAttr("k", 1)
	fl.SetTotal(time.Second)
	fl.Span(SpanPEPSetup, SegSatellite, time.Millisecond, nil)
	fl.Finish() // must not panic
}

func TestSamplingDeterministicAndRoughlyUniform(t *testing.T) {
	const n = 50
	hits := 0
	for c := 0; c < 20; c++ {
		for i := 0; i < 500; i++ {
			a := Sampled(c, 1, i, n)
			b := Sampled(c, 1, i, n)
			if a != b {
				t.Fatalf("Sampled(%d,1,%d,%d) not deterministic", c, i, n)
			}
			if a {
				hits++
			}
		}
	}
	// 10000 identities at 1-in-50 ⇒ expect ~200; allow a wide band.
	if hits < 100 || hits > 350 {
		t.Fatalf("1-in-%d sampling selected %d of 10000 identities", n, hits)
	}
	if !Sampled(7, 3, 9, 1) || !Sampled(7, 3, 9, 0) {
		t.Fatal("n<=1 must sample every flow")
	}
}

func TestCloseWritesSortedDeterministicJSONL(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := New(&buf, 1)
		// Finish out of identity order from several goroutines.
		ids := [][3]int{{2, 0, 5}, {0, 1, 3}, {0, 0, 9}, {1, 0, 0}, {0, 0, 1}}
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(c, d, i int) {
				defer wg.Done()
				fl := tr.Start(c, d, i)
				fl.SetMeta(4, "NG", 12, "TCP/HTTPS", "a.test", time.Hour)
				fl.Span(SpanPropagation, SegSatellite, 493*time.Millisecond, Attrs{"country": "NG"})
				fl.SetTotal(520 * time.Millisecond)
				fl.Finish()
			}(id[0], id[1], id[2])
		}
		wg.Wait()
		if got := tr.Len(); got != len(ids) {
			t.Fatalf("Len = %d, want %d", got, len(ids))
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("trace output not byte-identical across runs:\n%s\nvs\n%s", a, b)
	}
	flows, err := Read(strings.NewReader(a))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	wantOrder := []string{"c0-d0-f1", "c0-d0-f9", "c0-d1-f3", "c1-d0-f0", "c2-d0-f5"}
	if len(flows) != len(wantOrder) {
		t.Fatalf("read %d flows, want %d", len(flows), len(wantOrder))
	}
	for i, want := range wantOrder {
		if flows[i].ID() != want {
			t.Fatalf("flow %d = %s, want %s (output must sort by identity)", i, flows[i].ID(), want)
		}
	}
}

func TestRoundTripPreservesSpansAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, 1)
	fl := tr.Start(3, 1, 7)
	fl.SetMeta(2, "ZA", 23, "UDP/QUIC", "v.test", 90*time.Minute)
	fl.SetAttr("rho", 0.75)
	fl.Span(SpanMACUplink, SegSatellite, 30*time.Millisecond, Attrs{"util": 0.5})
	fl.Span(SpanGroundRTT, SegGround, 25*time.Millisecond, nil)
	fl.Span(SpanHandshakeRTT, SegProbe, 580*time.Millisecond, nil)
	fl.SetTotal(555 * time.Millisecond)
	fl.Finish()
	fl.Finish() // double Finish records once
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	flows, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(flows) != 1 {
		t.Fatalf("read %d flows, want 1 (double Finish must record once)", len(flows))
	}
	got := flows[0]
	if got.ID() != "c3-d1-f7" || got.Beam != 2 || got.Country != "ZA" || got.Hour != 23 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if got.TotalMS != 555 || len(got.Spans) != 3 {
		t.Fatalf("spans/total lost: total=%v spans=%d", got.TotalMS, len(got.Spans))
	}
	if got.ComponentMS(SpanMACUplink) != 30 || got.SatSumMS() != 30 {
		t.Fatalf("component sums wrong: %v / %v", got.ComponentMS(SpanMACUplink), got.SatSumMS())
	}
	if got.Attrs["rho"] != 0.75 || got.Spans[0].Attrs["util"] != 0.5 {
		t.Fatalf("attrs lost: %+v", got)
	}
}

func TestSpanNamesSortedAndComplete(t *testing.T) {
	names := SpanNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("SpanNames not sorted/unique at %d: %v", i, names)
		}
	}
	want := map[string]bool{
		SpanPropagation: true, SpanHandover: true, SpanMACUplink: true,
		SpanMACDownlink: true, SpanPEPSetup: true, SpanShaperThrottle: true,
		SpanGroundRTT: true, SpanHandshakeRTT: true,
		SpanLiveQueueWait: true, SpanLiveSynth: true, SpanLiveAdmit: true,
	}
	if len(names) != len(want) {
		t.Fatalf("SpanNames has %d entries, want %d", len(names), len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("SpanNames lists unknown span %q", n)
		}
	}
}

// BenchmarkStartDisabled measures the tracing-disabled hot path: a nil
// Tracer's Start. This is the full cost tracing adds to every flow when
// -trace is unset and must stay a pointer check (sub-nanosecond, zero
// allocations).
func BenchmarkStartDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fl := tr.Start(1, 0, i); fl != nil {
			b.Fatal("nil tracer produced a flow")
		}
	}
}

// BenchmarkStartUnsampled measures the enabled-but-unsampled path (the
// common case at realistic sample rates): one hash, no allocation.
func BenchmarkStartUnsampled(b *testing.B) {
	tr := New(io.Discard, 1<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start(1, 0, i)
	}
}
