package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// ReadStats reports what a tolerant read consumed: the JSONL lines it
// parsed and the corrupt lines it dropped instead of aborting on.
type ReadStats struct {
	Lines   int
	Skipped int
}

// read is the shared scanner: strict mode fails on the first corrupt
// line; tolerant mode drops it and counts it — the salvage path for a
// trace cut short by a kill.
func read(r io.Reader, strict bool) ([]*Flow, ReadStats, error) {
	var flows []*Flow
	var st ReadStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var f Flow
		if err := json.Unmarshal(b, &f); err != nil {
			if strict {
				return nil, st, fmt.Errorf("trace: line %d: %w", line, err)
			}
			st.Skipped++
			continue
		}
		st.Lines++
		flows = append(flows, &f)
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("trace: read: %w", err)
	}
	return flows, st, nil
}

// Read parses a JSONL trace stream written by Tracer.Close, failing on
// the first corrupt line.
func Read(r io.Reader) ([]*Flow, error) {
	flows, _, err := read(r, true)
	return flows, err
}

// ReadTolerant parses a JSONL trace stream, skipping and counting
// corrupt lines.
func ReadTolerant(r io.Reader) ([]*Flow, ReadStats, error) {
	return read(r, false)
}

// ReadFile parses a JSONL trace file.
func ReadFile(path string) ([]*Flow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadFileTolerant parses a JSONL trace file, skipping and counting
// corrupt lines.
func ReadFileTolerant(path string) ([]*Flow, ReadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ReadStats{}, err
	}
	defer f.Close()
	return ReadTolerant(f)
}

// ByID finds a flow by its "c<customer>-d<day>-f<index>" identity.
func ByID(flows []*Flow, id string) (*Flow, bool) {
	for _, f := range flows {
		if f.ID() == id {
			return f, true
		}
	}
	return nil, false
}

// TopK returns the k slowest flows: by TotalMS when by is empty, else by
// the summed duration of the named component. Ties break by flow
// identity so the ranking is deterministic.
func TopK(flows []*Flow, by string, k int) []*Flow {
	key := func(f *Flow) float64 {
		if by == "" {
			return f.TotalMS
		}
		return f.ComponentMS(by)
	}
	out := append([]*Flow(nil), flows...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ka, kb := key(a), key(b); ka != kb {
			return ka > kb
		}
		if a.Customer != b.Customer {
			return a.Customer < b.Customer
		}
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		return a.Index < b.Index
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Waterfall renders one flow's latency decomposition as a text chart:
// the satellite-segment spans with proportional bars summing to the
// total, then the ground segment and probe measurements.
func Waterfall(f *Flow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flow %s · beam %d · %s · hour %02d", f.ID(), f.Beam, f.Country, f.Hour)
	if f.Proto != "" {
		fmt.Fprintf(&sb, " · %s", f.Proto)
	}
	if f.Domain != "" {
		fmt.Fprintf(&sb, " · %s", f.Domain)
	}
	fmt.Fprintf(&sb, " · start +%s\n", time.Duration(f.StartMS*float64(time.Millisecond)).Round(time.Millisecond))
	if len(f.Attrs) > 0 {
		fmt.Fprintf(&sb, "  inputs: %s\n", formatAttrs(f.Attrs))
	}

	const barWidth = 28
	nameW := len("satellite RTT")
	for _, s := range f.Spans {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	scale := f.TotalMS
	if sum := f.SatSumMS(); sum > scale {
		scale = sum
	}
	for _, s := range f.Spans {
		if s.Seg != SegSatellite {
			continue
		}
		bar := ""
		pct := 0.0
		if scale > 0 {
			pct = 100 * s.DurMS / scale
			n := int(float64(barWidth)*s.DurMS/scale + 0.5)
			if n > barWidth {
				n = barWidth
			}
			bar = strings.Repeat("#", n) + strings.Repeat(".", barWidth-n)
		}
		fmt.Fprintf(&sb, "  %-*s %9.1f ms  %s %5.1f%%", nameW, s.Name, s.DurMS, bar, pct)
		if len(s.Attrs) > 0 {
			fmt.Fprintf(&sb, "  %s", formatAttrs(s.Attrs))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  %s\n", strings.Repeat("-", nameW+13+barWidth+8))
	fmt.Fprintf(&sb, "  %-*s %9.1f ms  (spans sum %.1f ms, delta %+.1f ms)\n",
		nameW, "satellite RTT", f.TotalMS, f.SatSumMS(), f.SatSumMS()-f.TotalMS)
	for _, s := range f.Spans {
		if s.Seg == SegSatellite {
			continue
		}
		tag := "ground segment"
		if s.Seg == SegProbe {
			tag = "probe-measured"
		}
		fmt.Fprintf(&sb, "  %-*s %9.1f ms  [%s]", nameW, s.Name, s.DurMS, tag)
		if len(s.Attrs) > 0 {
			fmt.Fprintf(&sb, "  %s", formatAttrs(s.Attrs))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary renders a one-line-per-flow ranking table for the given flows.
func Summary(flows []*Flow, by string) string {
	var sb strings.Builder
	head := "total"
	if by != "" {
		head = by
	}
	fmt.Fprintf(&sb, "%-16s %10s  %-4s %-3s %-4s %-10s %s\n", "flow", head+" ms", "beam", "cc", "hour", "proto", "domain")
	for _, f := range flows {
		v := f.TotalMS
		if by != "" {
			v = f.ComponentMS(by)
		}
		fmt.Fprintf(&sb, "%-16s %10.1f  %-4d %-3s %-4d %-10s %s\n",
			f.ID(), v, f.Beam, f.Country, f.Hour, f.Proto, f.Domain)
	}
	return sb.String()
}

// formatAttrs renders attributes as "k=v" pairs in sorted key order.
func formatAttrs(a Attrs) string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		switch v := a[k].(type) {
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%.4g", k, v))
		default:
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	return strings.Join(parts, " ")
}
