package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A trace file cut short by a kill: two complete flow lines with a
// half-written JSON object at the tail and mid-stream garbage.
const cutTrace = `{"customer":1,"day":0,"index":0,"total_ms":550}
not json at all
{"customer":2,"day":0,"index":3,"total_ms":700}
{"customer":3,"day":0,"ind`

func TestReadTolerantSkipsAndCounts(t *testing.T) {
	flows, st, err := ReadTolerant(strings.NewReader(cutTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("salvaged %d flows, want 2", len(flows))
	}
	if st.Lines != 2 || st.Skipped != 2 {
		t.Fatalf("stats = %+v, want 2 lines / 2 skipped", st)
	}
	if flows[0].Customer != 1 || flows[1].Customer != 2 {
		t.Fatalf("salvaged the wrong flows: %+v", flows)
	}
	// Strict mode fails on the first corrupt line and names it.
	if _, err := Read(strings.NewReader(cutTrace)); err == nil {
		t.Fatal("strict read accepted the cut trace")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict error %q does not name line 2", err)
	}
}

func TestReadFileTolerant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(cutTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	flows, st, err := ReadFileTolerant(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 || st.Skipped != 2 {
		t.Fatalf("file salvage: %d flows, %d skipped, want 2 / 2", len(flows), st.Skipped)
	}
	if _, _, err := ReadFileTolerant(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file did not error")
	}
}
