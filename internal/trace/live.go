package trace

// Live-path collection: where the batch Tracer buffers every sampled
// flow and sorts at Close, the streaming daemon needs two different
// destinations for a finished span tree — a bounded in-memory ring the
// control plane can serve (`GET /trace/recent`) and a size-capped
// rotating JSONL log on disk (`satlive -trace DIR`). Both are written
// by synthesis workers and read concurrently, so unlike the Tracer they
// are safe for reads while flows keep finishing.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Ring is a bounded, concurrency-safe buffer of the most recently
// finished flows. Old entries are evicted in FIFO order once the
// capacity is reached. Flows must not be mutated after insertion.
type Ring struct {
	mu    sync.Mutex
	buf   []*Flow
	next  int
	full  bool
	total uint64
}

// NewRing builds a ring keeping the last n flows (n < 1 keeps 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Flow, n)}
}

// Add inserts a finished flow, evicting the oldest when full.
func (r *Ring) Add(f *Flow) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = f
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Total reports how many flows have ever been added.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Recent returns up to limit flows, newest first (limit <= 0 returns
// everything retained). The returned slice is a copy; the flows are
// shared and must be treated as immutable.
func (r *Ring) Recent(limit int) []*Flow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*Flow, 0, limit)
	for i := 0; i < limit; i++ {
		// Walk backwards from the most recent insertion point.
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// RotatingWriter appends flows as JSONL to <dir>/trace.jsonl, rotating
// to trace.1.jsonl, trace.2.jsonl, ... when the current file exceeds
// maxBytes, and pruning rotations beyond keep. Each flow is written as
// one line in a single Write call, so a crash can corrupt at most the
// final line — which the tolerant reader skips. Safe for concurrent use.
type RotatingWriter struct {
	dir      string
	maxBytes int64
	keep     int

	mu   sync.Mutex
	f    *os.File
	size int64
	rots uint64
}

// DefaultTraceMaxBytes caps one live trace file before rotation.
const DefaultTraceMaxBytes = 8 << 20

// DefaultTraceKeep is how many rotated trace files survive pruning.
const DefaultTraceKeep = 4

// NewRotatingWriter opens (creating dir if needed) the live trace log.
// maxBytes <= 0 and keep <= 0 select the defaults.
func NewRotatingWriter(dir string, maxBytes int64, keep int) (*RotatingWriter, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultTraceMaxBytes
	}
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create dir: %w", err)
	}
	w := &RotatingWriter{dir: dir, maxBytes: maxBytes, keep: keep}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

// Current returns the path of the active trace file.
func (w *RotatingWriter) Current() string { return filepath.Join(w.dir, "trace.jsonl") }

func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.Current(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("trace: open log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("trace: stat log: %w", err)
	}
	w.f, w.size = f, st.Size()
	return nil
}

// Write appends one flow as a JSONL line, rotating first when the line
// would push the current file past the size cap. It reports whether a
// rotation happened.
func (w *RotatingWriter) Write(f *Flow) (rotated bool, err error) {
	if w == nil || f == nil {
		return false, nil
	}
	b, err := json.Marshal(f)
	if err != nil {
		return false, fmt.Errorf("trace: encode %s: %w", f.ID(), err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.size > 0 && w.size+int64(len(b)) > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return false, err
		}
		rotated = true
	}
	n, err := w.f.Write(b)
	w.size += int64(n)
	if err != nil {
		return rotated, fmt.Errorf("trace: write: %w", err)
	}
	return rotated, nil
}

// Rotations reports how many rotations have happened.
func (w *RotatingWriter) Rotations() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rots
}

// rotateLocked shifts trace.jsonl → trace.1.jsonl → ... → trace.<keep>
// (the oldest falls off) and opens a fresh current file.
func (w *RotatingWriter) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("trace: close for rotate: %w", err)
	}
	numbered := func(i int) string { return filepath.Join(w.dir, fmt.Sprintf("trace.%d.jsonl", i)) }
	os.Remove(numbered(w.keep))
	for i := w.keep - 1; i >= 1; i-- {
		if _, err := os.Stat(numbered(i)); err == nil {
			if err := os.Rename(numbered(i), numbered(i+1)); err != nil {
				return fmt.Errorf("trace: rotate: %w", err)
			}
		}
	}
	if err := os.Rename(w.Current(), numbered(1)); err != nil {
		return fmt.Errorf("trace: rotate current: %w", err)
	}
	w.rots++
	return w.open()
}

// Close flushes and closes the current file.
func (w *RotatingWriter) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Files lists the log set newest-first: the current file then rotations
// in increasing age. Only files that exist are returned.
func (w *RotatingWriter) Files() []string {
	var out []string
	if _, err := os.Stat(w.Current()); err == nil {
		out = append(out, w.Current())
	}
	for i := 1; i <= w.keep; i++ {
		p := filepath.Join(w.dir, fmt.Sprintf("trace.%d.jsonl", i))
		if _, err := os.Stat(p); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// SortByStart orders flows by start time, breaking ties by identity —
// the merge order sattrace uses when reading rotated live logs.
func SortByStart(flows []*Flow) {
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.StartMS != b.StartMS {
			return a.StartMS < b.StartMS
		}
		if a.Customer != b.Customer {
			return a.Customer < b.Customer
		}
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		return a.Index < b.Index
	})
}

// ReadFilesTolerant reads several JSONL trace files, concatenating
// their flows and accumulating skip counts across all of them.
func ReadFilesTolerant(paths []string) ([]*Flow, ReadStats, error) {
	var all []*Flow
	var st ReadStats
	for _, p := range paths {
		flows, s, err := ReadFileTolerant(p)
		if err != nil {
			return nil, st, fmt.Errorf("%s: %w", p, err)
		}
		st.Lines += s.Lines
		st.Skipped += s.Skipped
		all = append(all, flows...)
	}
	return all, st, nil
}

// ReadFiles reads several JSONL trace files strictly, failing on the
// first corrupt line in any of them.
func ReadFiles(paths []string) ([]*Flow, error) {
	var all []*Flow
	for _, p := range paths {
		flows, err := ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		all = append(all, flows...)
	}
	return all, nil
}
