package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func liveFlow(c, d, i int, start time.Duration) *Flow {
	f := &Flow{Customer: c, Day: d, Index: i}
	f.SetMeta(1, "IT", 9, "TCP/HTTPS", "x.test", start)
	f.Span(SpanLiveSynth, SegProbe, 2*time.Millisecond, nil)
	f.SetTotal(550 * time.Millisecond)
	return f
}

func TestRingRecentNewestFirstAndBounded(t *testing.T) {
	r := NewRing(3)
	if got := r.Recent(0); len(got) != 0 {
		t.Fatalf("empty ring Recent = %d flows", len(got))
	}
	for i := 0; i < 5; i++ {
		r.Add(liveFlow(0, 0, i, time.Duration(i)*time.Second))
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring retained %d flows, want cap 3", len(got))
	}
	// Newest first: indices 4, 3, 2 survive; 0 and 1 were evicted.
	for i, want := range []int{4, 3, 2} {
		if got[i].Index != want {
			t.Errorf("Recent[%d] = f%d, want f%d", i, got[i].Index, want)
		}
	}
	if limited := r.Recent(2); len(limited) != 2 || limited[0].Index != 4 {
		t.Errorf("Recent(2) = %d flows starting at f%d", len(limited), limited[0].Index)
	}
	// Nil-safety and min-capacity clamp.
	var nilRing *Ring
	nilRing.Add(liveFlow(0, 0, 0, 0))
	if nilRing.Recent(1) != nil || nilRing.Total() != 0 {
		t.Error("nil ring not inert")
	}
	one := NewRing(0)
	one.Add(liveFlow(0, 0, 7, 0))
	if got := one.Recent(0); len(got) != 1 || got[0].Index != 7 {
		t.Errorf("NewRing(0) must clamp to capacity 1, got %d flows", len(got))
	}
}

func TestRotatingWriterRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	// Tiny cap forces a rotation every couple of lines; keep 2.
	w, err := NewRotatingWriter(dir, 300, 2)
	if err != nil {
		t.Fatalf("NewRotatingWriter: %v", err)
	}
	var rotations int
	for i := 0; i < 12; i++ {
		rotated, err := w.Write(liveFlow(1, 0, i, time.Duration(i)*time.Minute))
		if err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		if rotated {
			rotations++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if rotations == 0 || w.Rotations() != uint64(rotations) {
		t.Fatalf("rotations reported %d / counter %d, want > 0 and equal", rotations, w.Rotations())
	}
	files := w.Files()
	if len(files) == 0 || files[0] != w.Current() {
		t.Fatalf("Files = %v, want current first", files)
	}
	if len(files) > 3 { // current + keep
		t.Fatalf("pruning kept %d files, want <= keep+1 = 3", len(files))
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.3.jsonl")); !os.IsNotExist(err) {
		t.Error("rotation beyond keep=2 survived pruning")
	}

	// The rotated set reads back as a complete, mergeable stream.
	flows, st, err := ReadFilesTolerant(files)
	if err != nil {
		t.Fatalf("ReadFilesTolerant: %v", err)
	}
	if st.Skipped != 0 {
		t.Fatalf("clean logs reported %d skipped lines", st.Skipped)
	}
	// The newest files hold the latest flows; only the oldest rotation
	// may have been pruned away, so the retained set is a contiguous
	// suffix of the write order.
	if len(flows) < 3 || len(flows) > 12 {
		t.Fatalf("read %d flows from rotated set", len(flows))
	}
	SortByStart(flows)
	for i := 1; i < len(flows); i++ {
		if flows[i].StartMS < flows[i-1].StartMS {
			t.Fatalf("SortByStart out of order at %d", i)
		}
		if flows[i].Index != flows[i-1].Index+1 {
			t.Fatalf("retained flows not contiguous: f%d after f%d", flows[i].Index, flows[i-1].Index)
		}
	}
	if last := flows[len(flows)-1]; last.Index != 11 {
		t.Fatalf("newest flow = f%d, want f11", last.Index)
	}
}

func TestSortByStartTieBreaksByIdentity(t *testing.T) {
	flows := []*Flow{
		{Customer: 2, Day: 0, Index: 1, StartMS: 100},
		{Customer: 1, Day: 1, Index: 9, StartMS: 100},
		{Customer: 1, Day: 0, Index: 5, StartMS: 100},
		{Customer: 1, Day: 0, Index: 2, StartMS: 50},
	}
	SortByStart(flows)
	want := []string{"c1-d0-f2", "c1-d0-f5", "c1-d1-f9", "c2-d0-f1"}
	for i, w := range want {
		if flows[i].ID() != w {
			t.Fatalf("order[%d] = %s, want %s", i, flows[i].ID(), w)
		}
	}
}

func TestStartSampledDeliversToSink(t *testing.T) {
	var got []*Flow
	sink := SinkFunc(func(f *Flow) { got = append(got, f) })

	if fl := StartSampled(nil, 1, 0, 0, 1); fl != nil {
		t.Fatal("nil sink must disable tracing")
	}
	// sampleN <= 1 samples everything.
	fl := StartSampled(sink, 3, 1, 7, 1)
	if fl == nil {
		t.Fatal("StartSampled(n=1) returned nil")
	}
	fl.Span(SpanLiveQueueWait, SegProbe, time.Millisecond, nil)
	fl.Finish()
	fl.Finish() // double Finish must deliver once
	if len(got) != 1 || got[0].ID() != "c3-d1-f7" {
		t.Fatalf("sink received %d flows: %v", len(got), got)
	}

	// The sampling decision must match Sampled exactly (the batch
	// -trace-sample contract carried onto the streaming path).
	const n = 10
	for i := 0; i < 200; i++ {
		fl := StartSampled(sink, 5, 2, i, n)
		if (fl != nil) != Sampled(5, 2, i, n) {
			t.Fatalf("StartSampled and Sampled disagree at index %d", i)
		}
	}
}

func TestRotatingWriterTolerantOfTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := NewRotatingWriter(dir, 0, 0) // defaults: one big file
	if err != nil {
		t.Fatalf("NewRotatingWriter: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Write(liveFlow(0, 0, i, 0)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a kill mid-write: chop the final line in half.
	path := filepath.Join(dir, "trace.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.TrimSuffix(string(b), "\n")
	cut = cut[:len(cut)-10]
	if err := os.WriteFile(path, []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}
	flows, st, err := ReadFileTolerant(path)
	if err != nil {
		t.Fatalf("ReadFileTolerant: %v", err)
	}
	if len(flows) != 2 || st.Skipped != 1 {
		t.Fatalf("salvage read %d flows, %d skipped; want 2, 1", len(flows), st.Skipped)
	}
}
