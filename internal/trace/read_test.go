package trace

import (
	"strings"
	"testing"
	"time"
)

func testFlows() []*Flow {
	mk := func(c, i int, total, pep float64) *Flow {
		f := &Flow{Customer: c, Day: 0, Index: i, Beam: 1, Country: "GB",
			Hour: 20, Proto: "TCP/HTTPS", Domain: "d.test", TotalMS: total}
		f.Spans = []Span{
			{Name: SpanPropagation, Seg: SegSatellite, DurMS: total - pep},
			{Name: SpanPEPSetup, Seg: SegSatellite, DurMS: pep, Attrs: Attrs{"rho": 0.9}},
			{Name: SpanGroundRTT, Seg: SegGround, DurMS: 25},
			{Name: SpanHandshakeRTT, Seg: SegProbe, DurMS: total},
		}
		return f
	}
	return []*Flow{mk(0, 0, 550, 40), mk(0, 1, 900, 400), mk(2, 0, 700, 10)}
}

func TestTopKByTotalAndComponent(t *testing.T) {
	flows := testFlows()
	byTotal := TopK(flows, "", 2)
	if len(byTotal) != 2 || byTotal[0].ID() != "c0-d0-f1" || byTotal[1].ID() != "c2-d0-f0" {
		t.Fatalf("TopK by total wrong: %s, %s", byTotal[0].ID(), byTotal[1].ID())
	}
	byPEP := TopK(flows, SpanPEPSetup, 3)
	if byPEP[0].ID() != "c0-d0-f1" || byPEP[1].ID() != "c0-d0-f0" || byPEP[2].ID() != "c2-d0-f0" {
		t.Fatalf("TopK by %s wrong: %s, %s, %s", SpanPEPSetup, byPEP[0].ID(), byPEP[1].ID(), byPEP[2].ID())
	}
	if got := TopK(flows, "", 0); len(got) != len(flows) {
		t.Fatalf("TopK k=0 returned %d flows, want all %d", len(got), len(flows))
	}
}

func TestByID(t *testing.T) {
	flows := testFlows()
	if f, ok := ByID(flows, "c2-d0-f0"); !ok || f.TotalMS != 700 {
		t.Fatalf("ByID(c2-d0-f0) = %v, %v", f, ok)
	}
	if _, ok := ByID(flows, "c9-d9-f9"); ok {
		t.Fatal("ByID found a flow that does not exist")
	}
}

func TestWaterfallRendersDecomposition(t *testing.T) {
	f := testFlows()[1] // total 900, pep 400
	f.StartMS = float64(2 * time.Hour / time.Millisecond)
	f.Attrs = Attrs{"rho": 0.9}
	out := Waterfall(f)
	for _, want := range []string{
		"flow c0-d0-f1", "beam 1", "GB", "TCP/HTTPS", "d.test",
		SpanPropagation, SpanPEPSetup, "rho=0.9",
		"satellite RTT", "900.0 ms", "spans sum 900.0 ms", "delta +0.0 ms",
		"[ground segment]", "[probe-measured]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryRanksAndLabels(t *testing.T) {
	flows := TopK(testFlows(), SpanPEPSetup, 2)
	out := Summary(flows, SpanPEPSetup)
	if !strings.Contains(out, SpanPEPSetup+" ms") {
		t.Fatalf("summary header missing component column:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "c0-d0-f1") {
		t.Fatalf("summary rows wrong:\n%s", out)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"customer\":1}\nnot json\n")); err == nil {
		t.Fatal("Read accepted malformed JSONL")
	}
	flows, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(flows) != 0 {
		t.Fatalf("Read of blank lines = %v, %v", flows, err)
	}
}
