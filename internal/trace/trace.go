// Package trace is the pipeline's per-flow flight recorder: where
// internal/obs aggregates every latency contribution into histograms,
// trace follows individual sampled flows through the simulator and emits
// one structured span tree per flow — the causal record of how *this*
// flow accumulated its ~550 ms (or multi-second) round trip.
//
// A Tracer is created with an output writer and a 1-in-N sample rate.
// The synthesis hot path asks Start for a handle; unsampled flows (and a
// nil Tracer — tracing disabled) get a nil *Flow, and every Flow method
// is a nil-safe no-op, so the disabled path costs one pointer check.
// Sampling is a deterministic hash of the flow identity (customer, day,
// intent index), never a counter or clock, so the same seed and sample
// rate select the same flows regardless of worker count or scheduling.
//
// Instrumented components (mac, pepmodel, shaper, tstat) append spans to
// the handle as the flow passes through them; each span carries the
// component's inputs (utilization, FER, rho, ...) as attributes. The
// component that observes the flow last — the tstat tracker, at flow
// emission — calls Finish, handing the completed tree back to the
// Tracer. Close sorts finished flows by identity and writes JSONL, one
// span tree per line, making the output byte-identical across runs and
// worker counts. OBSERVABILITY.md §Tracing documents the schema; cmd/
// sattrace renders waterfalls from the files.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span names, one per instrumented latency component. SpanNames lists
// them all for the runbook cross-check test.
const (
	// SpanPropagation is the speed-of-light slant-path round trip
	// (4 passes CPE↔satellite↔ground station): fixed per country under
	// the GEO constellation, a function of the pass phase under LEO.
	SpanPropagation = "geo.propagation"
	// SpanHandover is the damage a LEO satellite handover inflicts on a
	// flow starting inside the re-route window: the RTT step of the new
	// path plus the first-flight stall while it converges.
	SpanHandover = "geo.handover"
	// SpanMACUplink is the uplink MAC access delay: contention,
	// reservation and ARQ on the return channel.
	SpanMACUplink = "mac.uplink_access"
	// SpanMACDownlink is the downlink frame-alignment plus queueing
	// delay on the forward channel.
	SpanMACDownlink = "mac.downlink_queue"
	// SpanPEPSetup is the PEP connection-setup sojourn (M/M/1 at the
	// beam's current rho).
	SpanPEPSetup = "pep.setup"
	// SpanShaperThrottle is a token-bucket shaping delay imposed on a
	// throttled Take call (live QoS paths; the macro simulator applies
	// plan caps analytically and records the bottleneck as flow attrs).
	SpanShaperThrottle = "shaper.throttle"
	// SpanGroundRTT is the ground-segment round trip from the gateway
	// to the server hosting region.
	SpanGroundRTT = "cdn.ground_rtt"
	// SpanHandshakeRTT is the satellite RTT as the tstat probe measures
	// it from the captured handshake (ServerHello → next client flight),
	// recorded when the tracker emits the flow record.
	SpanHandshakeRTT = "tstat.handshake_rtt"
	// SpanLiveQueueWait is the wall time a flow intent spent buffered on
	// the live pipeline's queues between admission and synthesis pickup.
	SpanLiveQueueWait = "live.queue_wait"
	// SpanLiveSynth is the wall time the live synthesis worker spent
	// turning the intent into tracker events (the whole model stack).
	SpanLiveSynth = "live.synth"
	// SpanLiveAdmit is the wall time spent pushing the flow's record onto
	// the analytics queue; its attrs record whether admission succeeded
	// or the record was shed.
	SpanLiveAdmit = "live.analytics_admit"
)

// SpanNames returns every span name the pipeline can emit, sorted.
func SpanNames() []string {
	return []string{
		SpanGroundRTT,
		SpanHandover,
		SpanPropagation,
		SpanLiveAdmit,
		SpanLiveQueueWait,
		SpanLiveSynth,
		SpanMACDownlink,
		SpanMACUplink,
		SpanPEPSetup,
		SpanShaperThrottle,
		SpanHandshakeRTT,
	}
}

// Segment labels classifying where a span's time is spent. Spans in
// SegSatellite sum to the flow's satellite-segment RTT (the Total);
// SegGround is the gateway→server leg; SegProbe spans are measurements,
// not contributions, and are never summed.
const (
	SegSatellite = "sat"
	SegGround    = "ground"
	SegProbe     = "probe"
)

// Attrs carries a span's (or flow's) input parameters. Keys serialize in
// sorted order (encoding/json map behaviour), keeping output
// deterministic.
type Attrs map[string]any

// Span is one latency contribution inside a flow's tree.
type Span struct {
	Name string `json:"name"`
	// Seg is the segment label (SegSatellite, SegGround, SegProbe).
	Seg string `json:"seg,omitempty"`
	// DurMS is the contribution in milliseconds of simulated time.
	DurMS float64 `json:"dur_ms"`
	// Attrs are the component inputs that produced the contribution.
	Attrs Attrs `json:"attrs,omitempty"`
}

// Flow is the root of one sampled flow's span tree. Fields are written
// by exactly one worker goroutine between Start and Finish; after Finish
// the Tracer owns the value.
type Flow struct {
	// Customer, Day and Index identify the flow intent deterministically
	// (the sampling key and the output sort key).
	Customer int `json:"customer"`
	Day      int `json:"day"`
	Index    int `json:"index"`

	Beam    int    `json:"beam"`
	Country string `json:"country"`
	// Hour is the local beam hour of the flow start (0-23).
	Hour   int    `json:"hour"`
	Proto  string `json:"proto,omitempty"`
	Domain string `json:"domain,omitempty"`
	// StartMS is the flow start in milliseconds of simulated time.
	StartMS float64 `json:"start_ms"`
	// TotalMS is the flow's satellite-segment RTT in milliseconds; the
	// SegSatellite spans decompose it.
	TotalMS float64 `json:"total_ms"`
	// Attrs are flow-level inputs (utilization, FER, rho, bottleneck).
	Attrs Attrs  `json:"attrs,omitempty"`
	Spans []Span `json:"spans"`

	sink sink
}

// sink receives a flow tree when Finish is called. The batch Tracer
// collects into its sorted done list; the live pipeline's per-worker
// collector buffers for ring publication.
type sink interface {
	collect(*Flow)
}

// SinkFunc adapts a function to the Finish destination, letting callers
// outside the package (the live pipeline) receive finished span trees.
// The function runs on whatever goroutine calls Finish.
type SinkFunc func(*Flow)

func (fn SinkFunc) collect(f *Flow) { fn(f) }

// StartSampled returns a recording handle delivering to fn when the
// flow identity is in the 1-in-sampleN sample, nil otherwise. It is the
// streaming-path analogue of Tracer.Start.
func StartSampled(fn SinkFunc, customer, day, index int, sampleN uint64) *Flow {
	if fn == nil || !Sampled(customer, day, index, sampleN) {
		return nil
	}
	return &Flow{Customer: customer, Day: day, Index: index, sink: fn}
}

// ID renders the flow identity as "c<customer>-d<day>-f<index>".
func (f *Flow) ID() string {
	return fmt.Sprintf("c%d-d%d-f%d", f.Customer, f.Day, f.Index)
}

// SetMeta fills the flow-level metadata. Nil-safe.
func (f *Flow) SetMeta(beam int, country string, hour int, proto, domain string, start time.Duration) {
	if f == nil {
		return
	}
	f.Beam, f.Country, f.Hour = beam, country, hour
	f.Proto, f.Domain = proto, domain
	f.StartMS = ms(start)
}

// SetAttr records one flow-level attribute. Nil-safe.
func (f *Flow) SetAttr(key string, v any) {
	if f == nil {
		return
	}
	if f.Attrs == nil {
		f.Attrs = Attrs{}
	}
	f.Attrs[key] = v
}

// SetTotal records the flow's satellite-segment RTT. Nil-safe.
func (f *Flow) SetTotal(d time.Duration) {
	if f == nil {
		return
	}
	f.TotalMS = ms(d)
}

// Span appends one latency contribution. Nil-safe.
func (f *Flow) Span(name, seg string, d time.Duration, attrs Attrs) {
	if f == nil {
		return
	}
	f.Spans = append(f.Spans, Span{Name: name, Seg: seg, DurMS: ms(d), Attrs: attrs})
}

// Finish hands the completed tree to its sink. Nil-safe; finishing a
// flow twice records it once.
func (f *Flow) Finish() {
	if f == nil || f.sink == nil {
		return
	}
	s := f.sink
	f.sink = nil
	s.collect(f)
}

// SatSumMS returns the sum of the flow's SegSatellite span durations —
// the decomposition that must match TotalMS.
func (f *Flow) SatSumMS() float64 {
	var sum float64
	for _, s := range f.Spans {
		if s.Seg == SegSatellite {
			sum += s.DurMS
		}
	}
	return sum
}

// ComponentMS returns the summed duration of the named component's spans.
func (f *Flow) ComponentMS(name string) float64 {
	var sum float64
	for _, s := range f.Spans {
		if s.Name == name {
			sum += s.DurMS
		}
	}
	return sum
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Tracer collects sampled flow trees and serializes them on Close. Safe
// for concurrent use by the pass-B workers; a nil *Tracer is a valid
// disabled tracer (Start returns nil).
type Tracer struct {
	w       io.Writer
	sampleN uint64

	mu   sync.Mutex
	done []*Flow
}

// New builds a tracer writing JSONL to w, sampling 1 in sampleN flows
// (sampleN <= 1 traces every flow).
func New(w io.Writer, sampleN int) *Tracer {
	if sampleN < 1 {
		sampleN = 1
	}
	return &Tracer{w: w, sampleN: uint64(sampleN)}
}

// collect implements sink: finished flows join the sorted-at-Close list.
func (t *Tracer) collect(f *Flow) {
	t.mu.Lock()
	t.done = append(t.done, f)
	t.mu.Unlock()
}

// SampleN reports the configured 1-in-N sampling rate.
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.sampleN)
}

// Start returns a recording handle when the flow identified by
// (customer, day, index) is sampled, nil otherwise. Nil-safe: a nil
// Tracer always returns nil, making the disabled path a pointer check.
func (t *Tracer) Start(customer, day, index int) *Flow {
	if t == nil || !Sampled(customer, day, index, t.sampleN) {
		return nil
	}
	return &Flow{Customer: customer, Day: day, Index: index, sink: t}
}

// Sampled reports whether the flow identity hashes into the 1-in-N
// sample. The decision depends only on the identity and n — never on
// counters, scheduling or clocks — so a given seed and sample rate
// always select the same flows.
func Sampled(customer, day, index int, n uint64) bool {
	if n <= 1 {
		return true
	}
	x := uint64(customer)*0x9e3779b97f4a7c15 ^ uint64(day)*0xbf58476d1ce4e5b9 ^ uint64(index)*0x94d049bb133111eb
	// splitmix64 finalizer: avalanche the combined identity.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x%n == 0
}

// Len reports how many flows have finished so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Close sorts the finished flows by identity and writes them as JSONL,
// one span tree per line. The output is byte-identical for identical
// (seed, sample) runs regardless of worker count. Close does not close
// the underlying writer and must not race with in-flight Finish calls.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	flows := t.done
	t.done = nil
	t.mu.Unlock()
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.Customer != b.Customer {
			return a.Customer < b.Customer
		}
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		return a.Index < b.Index
	})
	bw := bufio.NewWriter(t.w)
	enc := json.NewEncoder(bw)
	for _, f := range flows {
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("trace: encode %s: %w", f.ID(), err)
		}
	}
	return bw.Flush()
}
