package obs

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestMemSamplerStopIdempotent(t *testing.T) {
	s := StartMemSampler(time.Millisecond)
	_ = make([]byte, 1<<20)
	first := s.Stop()
	if first.TotalAllocBytes == 0 || first.TotalAllocs == 0 {
		t.Fatalf("no allocations recorded: %+v", first)
	}
	// Later calls return the frozen snapshot: allocations after the first
	// Stop must not bleed in.
	_ = make([]byte, 1<<20)
	if again := s.Stop(); again != first {
		t.Fatalf("second Stop returned a different snapshot:\nfirst  %+v\nsecond %+v", first, again)
	}
}

func TestMemSamplerConcurrentStop(t *testing.T) {
	s := StartMemSampler(time.Millisecond)
	results := make([]MemInfo, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Stop()
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != results[0] {
			t.Fatalf("concurrent Stop disagreed: [0]=%+v [%d]=%+v", results[0], i, got)
		}
	}
}

// The observability helpers must not leak goroutines across a
// start/stop cycle: a long-lived satwatch process starting samplers and
// debug servers per run would otherwise accumulate them forever.
func TestObsHelpersLeaveNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := StartMemSampler(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Stop()

	_, stop, err := StartDebugServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stop()

	// Exiting goroutines need a beat to unwind; poll up to 2s.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
