package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFormatRate(t *testing.T) {
	cases := []struct {
		events  int64
		elapsed time.Duration
		want    string
	}{
		{1000, 0, "0/s"},                 // zero elapsed: no division by zero
		{1000, -time.Second, "0/s"},      // negative elapsed (clock skew) is clamped too
		{0, time.Second, "0/s"},          // zero events
		{500, time.Second, "500/s"},      // plain range
		{999, time.Second, "999/s"},      // just below the k threshold
		{4100, time.Second, "4.1k/s"},    // k range
		{2500000, time.Second, "2.5M/s"}, // M range
		{1000, 2 * time.Second, "500/s"}, // rate, not count
	}
	for _, c := range cases {
		if got := FormatRate(c.events, c.elapsed); got != c.want {
			t.Errorf("FormatRate(%d, %v) = %q, want %q", c.events, c.elapsed, got, c.want)
		}
	}
}

func TestETA(t *testing.T) {
	cases := []struct {
		name        string
		done, total int64
		elapsed     time.Duration
		want        string
	}{
		{"zero total", 5, 0, time.Second, "ETA --"},
		{"negative total", 5, -1, time.Second, "ETA --"},
		{"nothing done", 0, 100, time.Second, "ETA --"},
		{"negative done", -3, 100, time.Second, "ETA --"},
		{"below one percent", 1, 1000, time.Minute, "ETA --"}, // too early to extrapolate
		{"exactly done", 100, 100, time.Minute, "ETA 0s"},
		{"overshoot", 150, 100, time.Minute, "ETA 0s"}, // done > total must not go negative
		{"halfway", 50, 100, 10 * time.Second, "ETA 10s"},
		{"one percent boundary", 10, 1000, 10 * time.Second, "ETA 16m30s"},
	}
	for _, c := range cases {
		if got := ETA(c.done, c.total, c.elapsed); got != c.want {
			t.Errorf("%s: ETA(%d, %d, %v) = %q, want %q", c.name, c.done, c.total, c.elapsed, got, c.want)
		}
	}
}

func TestStartProgressEmitsFinalLine(t *testing.T) {
	var buf safeBuffer
	var calls atomic.Int64
	stop := StartProgress(&buf, time.Hour, func(elapsed time.Duration) string {
		calls.Add(1)
		return "line"
	})
	// The interval is far away; only stop's final line should appear.
	stop()
	stop() // idempotent
	if got := calls.Load(); got != 1 {
		t.Errorf("line callback ran %d times, want exactly 1 (the final flush)", got)
	}
	if s := buf.String(); s != "line\n" {
		t.Errorf("progress output = %q, want one final line", s)
	}
}

// safeBuffer is a minimal goroutine-safe strings.Builder for the
// reporter's writes.
type safeBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
