package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file through a same-directory temp file and a
// rename, so a crash or kill mid-write leaves either the previous file
// or nothing — never a truncated output. The temp file is fsynced before
// the rename; write is handed a buffered-enough *os.File directly.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("obs: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("obs: atomic write %s: close: %w", path, err)
	}
	if err = os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("obs: atomic write %s: chmod: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: atomic write %s: rename: %w", path, err)
	}
	return nil
}
