package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func debugTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("debug_test_total", "Test counter.", "").Add(3)
	return reg
}

func TestDebugHandlerMetrics(t *testing.T) {
	h := DebugHandler(debugTestRegistry(t), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "debug_test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

func TestDebugHandlerProgress(t *testing.T) {
	type state struct {
		Phase string `json:"phase"`
		Flows int    `json:"flows"`
	}
	h := DebugHandler(debugTestRegistry(t), func() any { return state{Phase: "pass B", Flows: 42} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/progress", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/progress status = %d", rec.Code)
	}
	var got state
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Phase != "pass B" || got.Flows != 42 {
		t.Fatalf("/progress = %+v", got)
	}

	// Nil progress callback serves an empty object, not an error.
	h = DebugHandler(debugTestRegistry(t), nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/progress", nil))
	if rec.Code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(rec.Body.String()), "{") {
		t.Fatalf("/progress with nil callback = %d %q", rec.Code, rec.Body.String())
	}
}

func TestDebugHandlerPprofIndex(t *testing.T) {
	h := DebugHandler(debugTestRegistry(t), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%.200s", body)
	}
}

func TestStartDebugServerServesAndStops(t *testing.T) {
	bound, stop, err := StartDebugServer("127.0.0.1:0", debugTestRegistry(t), nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "debug_test_total") {
		t.Fatalf("live /metrics = %d %q", resp.StatusCode, body)
	}
	stop()
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Fatal("server still serving after stop")
	}
}

func TestManifestAddTrace(t *testing.T) {
	dir := t.TempDir()

	// Missing file: path and rate recorded, no digest, no error.
	m := NewManifest("satgen", 1)
	m.AddTrace(filepath.Join(dir, "nope.jsonl"), 50)
	if m.Trace == nil || m.Trace.Sample != 50 || m.Trace.SHA256 != "" {
		t.Fatalf("AddTrace on missing file = %+v", m.Trace)
	}

	// Empty file: same (a sampled run can select zero flows).
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m.AddTrace(empty, 10)
	if m.Trace.SHA256 != "" || m.Trace.File != empty {
		t.Fatalf("AddTrace on empty file = %+v", m.Trace)
	}

	// Real content digests like AddOutput does.
	full := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(full, []byte("{\"customer\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.AddTrace(full, 1)
	if !strings.HasPrefix(m.Trace.SHA256, "sha256:") || m.Trace.Sample != 1 {
		t.Fatalf("AddTrace on real file = %+v", m.Trace)
	}

	// Round-trips through the manifest file.
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil || back.Trace.SHA256 != m.Trace.SHA256 || back.Trace.Sample != 1 {
		t.Fatalf("trace info lost in round trip: %+v", back.Trace)
	}
}
