package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

func debugTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("debug_test_total", "Test counter.", "").Add(3)
	return reg
}

func TestDebugHandlerMetrics(t *testing.T) {
	h := DebugHandler(debugTestRegistry(t), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "debug_test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

func TestDebugHandlerProgress(t *testing.T) {
	type state struct {
		Phase string `json:"phase"`
		Flows int    `json:"flows"`
	}
	h := DebugHandler(debugTestRegistry(t), func() any { return state{Phase: "pass B", Flows: 42} })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/progress", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/progress status = %d", rec.Code)
	}
	var got state
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Phase != "pass B" || got.Flows != 42 {
		t.Fatalf("/progress = %+v", got)
	}

	// Nil progress callback serves an empty object, not an error.
	h = DebugHandler(debugTestRegistry(t), nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/progress", nil))
	if rec.Code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(rec.Body.String()), "{") {
		t.Fatalf("/progress with nil callback = %d %q", rec.Code, rec.Body.String())
	}
}

func TestDebugHandlerPprofIndex(t *testing.T) {
	h := DebugHandler(debugTestRegistry(t), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%.200s", body)
	}
}

func TestStartDebugServerServesAndStops(t *testing.T) {
	bound, stop, err := StartDebugServer("127.0.0.1:0", debugTestRegistry(t), nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "debug_test_total") {
		t.Fatalf("live /metrics = %d %q", resp.StatusCode, body)
	}
	stop()
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Fatal("server still serving after stop")
	}
}

// TestStartDebugServerNoGoroutineLeak cycles the server up and down and
// checks the goroutine count returns to baseline: a lingering Serve or
// handler goroutine per cycle is exactly the leak the stop() contract
// forbids.
func TestStartDebugServerNoGoroutineLeak(t *testing.T) {
	// Warm up the HTTP machinery (transport pools, resolver) so its
	// one-time goroutines do not count against the cycles.
	bound, stop, err := StartDebugServer("127.0.0.1:0", debugTestRegistry(t), nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	if resp, err := http.Get("http://" + bound + "/metrics"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	stop()
	http.DefaultClient.CloseIdleConnections()

	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		bound, stop, err := StartDebugServer("127.0.0.1:0", debugTestRegistry(t), nil)
		if err != nil {
			t.Fatalf("cycle %d: StartDebugServer: %v", i, err)
		}
		resp, err := http.Get("http://" + bound + "/metrics")
		if err != nil {
			t.Fatalf("cycle %d: GET /metrics: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		stop()
	}
	http.DefaultClient.CloseIdleConnections()

	// Stopped servers' goroutines unwind asynchronously; poll briefly
	// before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked across 10 start/stop cycles: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// TestStartDebugServerStopForcesActiveConns pins the Shutdown→Close
// fallback: a connection held open past the drain timeout must be
// force-closed instead of keeping its handler goroutine alive forever.
func TestStartDebugServerStopForcesActiveConns(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the 2s drain timeout")
	}
	bound, stop, err := StartDebugServer("127.0.0.1:0", debugTestRegistry(t), nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	// A 30s streaming CPU profile holds its handler well past the 2s
	// drain window.
	slow := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + bound + "/debug/pprof/profile?seconds=30")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		slow <- err
	}()
	time.Sleep(200 * time.Millisecond) // let the handler start streaming

	done := make(chan struct{})
	go func() { stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stop() hung on an active connection")
	}
	// The client side must observe the forced close, not a clean 30s
	// profile.
	select {
	case <-slow:
	case <-time.After(5 * time.Second):
		t.Fatal("held connection survived stop()")
	}
}

func TestManifestAddTrace(t *testing.T) {
	dir := t.TempDir()

	// Missing file: path and rate recorded, no digest, no error.
	m := NewManifest("satgen", 1)
	m.AddTrace(filepath.Join(dir, "nope.jsonl"), 50)
	if m.Trace == nil || m.Trace.Sample != 50 || m.Trace.SHA256 != "" {
		t.Fatalf("AddTrace on missing file = %+v", m.Trace)
	}

	// Empty file: same (a sampled run can select zero flows).
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m.AddTrace(empty, 10)
	if m.Trace.SHA256 != "" || m.Trace.File != empty {
		t.Fatalf("AddTrace on empty file = %+v", m.Trace)
	}

	// Real content digests like AddOutput does.
	full := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(full, []byte("{\"customer\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.AddTrace(full, 1)
	if !strings.HasPrefix(m.Trace.SHA256, "sha256:") || m.Trace.Sample != 1 {
		t.Fatalf("AddTrace on real file = %+v", m.Trace)
	}

	// Round-trips through the manifest file.
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil || back.Trace.SHA256 != m.Trace.SHA256 || back.Trace.Sample != 1 {
		t.Fatalf("trace info lost in round trip: %+v", back.Trace)
	}
}
