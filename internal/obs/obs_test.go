package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_events_total", "", "")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	c.Add(-5)
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter accepted negative add: %d", got)
	}
}

func TestGaugeConcurrentAddAndMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("t_depth", "", "")
	m := r.Gauge("t_peak", "", "")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(1)
				m.SetMax(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge add = %v, want %d", got, workers*per)
	}
	if got, want := m.Value(), float64(workers*per-1); got != want {
		t.Fatalf("gauge max = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_size", "", "bytes", []float64{10, 100, 1000})
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 2000)) // half <1000, some in each bucket
			}
		}()
	}
	wg.Wait()
	s := h.snap()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	// i%2000: values 0..10 → first bucket has 11 per loop pass of 2000.
	if got, want := s.Buckets[0].Count, int64(workers*per/2000*11); got != want {
		t.Fatalf("bucket[0] = %d, want %d", got, want)
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", s.Buckets[len(s.Buckets)-1].UpperBound)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t_op_seconds", "op latency")
	tm.Observe(1500 * time.Millisecond)
	tm.Observe(500 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 2*time.Second {
		t.Fatalf("timer = %d obs, %v total", tm.Count(), tm.Total())
	}
	stop := tm.Start()
	stop()
	if tm.Count() != 3 {
		t.Fatalf("Start/stop did not record")
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_x", "", "")
	b := r.Counter("t_x", "", "")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("t_x", "", "")
}

// TestPrometheusGolden pins the exact exposition output.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_events_total", "Events processed.", "")
	g := r.Gauge("demo_queue_depth", "Live queue depth.", "items")
	tm := r.Timer("demo_merge_seconds", "Merge wall time.")
	h := r.Histogram("demo_delay_seconds", "Access delay.", "seconds", []float64{0.01, 0.1, 1})
	c.Add(42)
	g.Set(7.5)
	tm.Observe(250 * time.Millisecond)
	tm.Observe(750 * time.Millisecond)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP demo_delay_seconds Access delay.
# TYPE demo_delay_seconds histogram
demo_delay_seconds_bucket{le="0.01"} 1
demo_delay_seconds_bucket{le="0.1"} 3
demo_delay_seconds_bucket{le="1"} 3
demo_delay_seconds_bucket{le="+Inf"} 4
demo_delay_seconds_sum 2.605
demo_delay_seconds_count 4
# HELP demo_events_total Events processed.
# TYPE demo_events_total counter
demo_events_total 42
# HELP demo_merge_seconds Merge wall time.
# TYPE demo_merge_seconds summary
demo_merge_seconds_sum 1
demo_merge_seconds_count 2
# HELP demo_queue_depth Live queue depth.
# TYPE demo_queue_depth gauge
demo_queue_depth 7.5
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

func TestJSONDumpRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_a_total", "help a", "").Add(3)
	h := r.Histogram("t_b_seconds", "", "seconds", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump map[string]struct {
		Kind    string  `json:"kind"`
		Value   float64 `json:"value"`
		Count   int64   `json:"count"`
		Buckets []struct {
			LE    any   `json:"le"`
			Count int64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump["t_a_total"].Value != 3 || dump["t_a_total"].Kind != "counter" {
		t.Fatalf("counter dump wrong: %+v", dump["t_a_total"])
	}
	b := dump["t_b_seconds"]
	if b.Count != 2 || b.Value != 2.5 || len(b.Buckets) != 2 || b.Buckets[1].LE != "inf" {
		t.Fatalf("histogram dump wrong: %+v", b)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "", "")
	h := r.Histogram("t_h", "", "", []float64{1})
	c.Inc()
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left state behind")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "flows.tsv")
	if err := os.WriteFile(out, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("testtool", 99)
	m.Parallelism = 4
	m.AddTiming("pass_a", 1500*time.Millisecond)
	if err := m.AddOutput(out); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "testtool" || got.Seed != 99 || got.Parallelism != 4 {
		t.Fatalf("manifest fields lost: %+v", got)
	}
	if got.TimingsSeconds["pass_a"] != 1.5 {
		t.Fatalf("timing lost: %v", got.TimingsSeconds)
	}
	d, ok := got.Outputs["flows.tsv"]
	if !ok || !strings.HasPrefix(d, "sha256:") || len(d) != len("sha256:")+64 {
		t.Fatalf("digest malformed: %q", d)
	}
}

func TestManifestStatusFaultsErrorsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("testtool", 7)
	m.Status = "degraded"
	m.Faults = map[string]any{"preset": "stress", "events": 5}
	m.Errors = []string{"customer 12: panic: boom", "customer 19: panic: boom"}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != "degraded" {
		t.Fatalf("status lost: %q", got.Status)
	}
	if len(got.Errors) != 2 || !strings.Contains(got.Errors[0], "panic: boom") {
		t.Fatalf("errors lost: %v", got.Errors)
	}
	f, ok := got.Faults.(map[string]any)
	if !ok || f["preset"] != "stress" {
		t.Fatalf("faults lost: %#v", got.Faults)
	}

	// A clear-sky OK manifest omits all three fields from the JSON.
	clear := NewManifest("testtool", 7)
	clear.Status = "ok"
	if err := clear.Write(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "faults") || strings.Contains(string(raw), "errors") {
		t.Fatalf("clear-sky manifest carries fault fields:\n%s", raw)
	}
}

func TestETAAndRate(t *testing.T) {
	if got := ETA(0, 100, time.Second); got != "ETA --" {
		t.Fatalf("ETA at zero progress = %q", got)
	}
	if got := ETA(50, 100, 10*time.Second); got != "ETA 10s" {
		t.Fatalf("ETA halfway = %q", got)
	}
	if got := FormatRate(4100, time.Second); got != "4.1k/s" {
		t.Fatalf("rate = %q", got)
	}
}

func TestStartProgress(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	stop := StartProgress(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), 10*time.Millisecond, func(el time.Duration) string { return "tick" })
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if strings.Count(out, "tick") < 2 {
		t.Fatalf("expected at least 2 progress lines, got %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
