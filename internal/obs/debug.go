package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler builds the live debug mux served by -debug-addr:
//
//   - /metrics          Prometheus text exposition of reg
//   - /progress         JSON from the progress callback (the same state
//     the -progress stderr line renders)
//   - /debug/pprof/*    the standard Go profiling endpoints
//
// progress may be nil, in which case /progress serves an empty object.
// The mux is returned so tests can drive it without a listener.
func DebugHandler(reg *Registry, progress func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if progress != nil {
			v = progress()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr (host:port; port 0 picks a free one)
// and serves DebugHandler until stop is called. It returns the bound
// address so callers can print where the server actually lives.
func StartDebugServer(addr string, reg *Registry, progress func() any) (bound string, stop func(), err error) {
	return StartServer(addr, DebugHandler(reg, progress))
}

// StartServer is StartDebugServer for an arbitrary handler — daemons
// that grow the debug mux into a control plane (satlive) mount their own
// handler but keep the same lifecycle: graceful 2 s drain on stop, then
// a forced close so no handler goroutine outlives the run.
func StartServer(addr string, h http.Handler) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: h}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Serve returns ErrServerClosed on Shutdown; anything else is a
		// runtime failure the caller cannot react to, so it is dropped.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The graceful drain timed out — an active connection (a
			// streaming pprof profile, a stuck client) is keeping its
			// handler goroutine alive. Force-close the remaining
			// connections so nothing outlives the run.
			_ = srv.Close()
		}
		<-done
	}, nil
}
