package obs

import (
	"bytes"
	"strings"
	"testing"
)

// HELP text with backslashes or newlines must be escaped per the text
// exposition format, or a single help string breaks line-oriented
// scrapers for the whole page.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("edge_escape_total", "Path C:\\logs,\nsecond line.", "").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP edge_escape_total Path C:\\logs,\nsecond line.` + "\n"
	if !strings.Contains(got, want) {
		t.Fatalf("HELP not escaped:\n%s", got)
	}
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if line == "" {
			t.Fatalf("raw newline leaked into exposition:\n%s", got)
		}
	}
}

// Observations past the last finite bound must appear in the implicit
// +Inf bucket, and the cumulative +Inf count must equal _count.
func TestPrometheusInfBucketCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_delay_seconds", "", "seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)  // beyond the last finite bound
	h.Observe(100) // beyond the last finite bound

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`edge_delay_seconds_bucket{le="0.1"} 1`,
		`edge_delay_seconds_bucket{le="1"} 2`,
		`edge_delay_seconds_bucket{le="+Inf"} 4`,
		`edge_delay_seconds_count 4`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// A timer that never observed anything still exposes a well-formed
// summary pair: _sum 0 and _count 0, not NaN and not an absent series.
func TestPrometheusZeroObservationTimer(t *testing.T) {
	r := NewRegistry()
	r.Timer("edge_idle_seconds", "Never fires in this test.")
	r.Histogram("edge_idle_hist_seconds", "", "seconds", []float64{1})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"edge_idle_seconds_sum 0",
		"edge_idle_seconds_count 0",
		`edge_idle_hist_seconds_bucket{le="1"} 0`,
		`edge_idle_hist_seconds_bucket{le="+Inf"} 0`,
		"edge_idle_hist_seconds_count 0",
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NaN") {
		t.Fatalf("NaN leaked into exposition:\n%s", got)
	}
}
