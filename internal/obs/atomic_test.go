package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tempLeftovers(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsv")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "col\nval\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "col\nval\n" {
		t.Fatalf("content = %q", got)
	}
	if tmps := tempLeftovers(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}

	// Overwrite keeps the old file intact until the rename lands.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2\n" {
		t.Fatalf("overwrite content = %q", got)
	}
}

func TestWriteFileAtomicErrorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsv")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half a row")
		return fmt.Errorf("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("write error not surfaced: %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("failed write left %s behind", path)
	}
	if tmps := tempLeftovers(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}

	// A failed overwrite must not clobber the existing file.
	if err := os.WriteFile(path, []byte("keep\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return fmt.Errorf("boom again")
	}); err == nil {
		t.Fatal("expected error")
	}
	if got, _ := os.ReadFile(path); string(got) != "keep\n" {
		t.Fatalf("failed overwrite clobbered file: %q", got)
	}
}
