package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus serializes the registry in the Prometheus text
// exposition format (version 0.0.4), metrics sorted by name. Counters and
// gauges map directly; timers are exposed as summaries (_sum/_count);
// histograms use cumulative _bucket{le="..."} series plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			bw.WriteString("# HELP " + s.Name + " " + escapeHelp(s.Help) + "\n")
		}
		switch s.Kind {
		case KindCounter:
			bw.WriteString("# TYPE " + s.Name + " counter\n")
			bw.WriteString(s.Name + " " + formatFloat(s.Value) + "\n")
		case KindGauge:
			bw.WriteString("# TYPE " + s.Name + " gauge\n")
			bw.WriteString(s.Name + " " + formatFloat(s.Value) + "\n")
		case KindTimer:
			bw.WriteString("# TYPE " + s.Name + " summary\n")
			bw.WriteString(s.Name + "_sum " + formatFloat(s.Value) + "\n")
			bw.WriteString(s.Name + "_count " + strconv.FormatInt(s.Count, 10) + "\n")
		case KindHistogram:
			bw.WriteString("# TYPE " + s.Name + " histogram\n")
			var cum int64
			for _, b := range s.Buckets {
				cum += b.Count
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				bw.WriteString(s.Name + `_bucket{le="` + le + `"} ` + strconv.FormatInt(cum, 10) + "\n")
			}
			bw.WriteString(s.Name + "_sum " + formatFloat(s.Value) + "\n")
			bw.WriteString(s.Name + "_count " + strconv.FormatInt(s.Count, 10) + "\n")
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp applies the text-exposition escaping rules for HELP lines:
// a literal backslash becomes \\ and a newline becomes \n. Without it a
// multi-line help string would break the line-oriented format.
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace

// jsonBucket mirrors Bucket with an "inf" marker for the +Inf bound,
// which encoding/json cannot represent as a number.
type jsonBucket struct {
	UpperBound any   `json:"le"`
	Count      int64 `json:"count"`
}

type jsonMetric struct {
	Kind    Kind         `json:"kind"`
	Help    string       `json:"help,omitempty"`
	Unit    string       `json:"unit,omitempty"`
	Value   float64      `json:"value"`
	Count   *int64       `json:"count,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// WriteJSON serializes the registry as a JSON object mapping metric name
// to {kind, help, unit, value, count?, buckets?}. This is the `-metrics
// FILE` dump format of the CLIs; keys serialize in sorted order.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]jsonMetric{}
	for _, s := range r.Snapshot() {
		jm := jsonMetric{Kind: s.Kind, Help: s.Help, Unit: s.Unit, Value: s.Value}
		if s.Kind == KindTimer || s.Kind == KindHistogram {
			n := s.Count
			jm.Count = &n
		}
		for _, b := range s.Buckets {
			ub := any(b.UpperBound)
			if math.IsInf(b.UpperBound, 1) {
				ub = "inf"
			}
			jm.Buckets = append(jm.Buckets, jsonBucket{UpperBound: ub, Count: b.Count})
		}
		out[s.Name] = jm
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
