package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// StartProgress runs a background reporter that writes one line produced
// by the line callback to w every interval (the `-progress` flag of the
// CLIs). The callback receives the elapsed time since the reporter
// started. The returned stop function emits a final line and terminates
// the reporter; it is safe to call once.
func StartProgress(w io.Writer, interval time.Duration, line func(elapsed time.Duration) string) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	start := time.Now()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, line(time.Since(start)))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			fmt.Fprintln(w, line(time.Since(start)))
		})
	}
}

// FormatRate renders an events-per-second rate compactly ("4.1k/s").
func FormatRate(events int64, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "0/s"
	}
	r := float64(events) / elapsed.Seconds()
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f/s", r)
	}
}

// ETA estimates remaining time from progress so far; it returns a
// placeholder until at least 1% of the work is done.
func ETA(done, total int64, elapsed time.Duration) string {
	if total <= 0 || done <= 0 || done*100 < total {
		return "ETA --"
	}
	if done >= total {
		return "ETA 0s"
	}
	rem := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
	return "ETA " + rem.Round(time.Second).String()
}
