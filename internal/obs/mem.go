package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// MemInfo is a run's memory footprint, recorded in the manifest `mem`
// block and per scenario in BENCH files. HeapAllocBytes is the live heap
// at capture time; TotalAllocBytes, TotalAllocs (heap objects), NumGC and
// GCPauseTotalSeconds are deltas over the sampled window; PeakHeapBytes
// is the highest live heap a sampler observed during the window (0 when
// no sampler ran).
type MemInfo struct {
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes     uint64  `json:"total_alloc_bytes"`
	TotalAllocs         uint64  `json:"total_allocs,omitempty"`
	NumGC               uint32  `json:"num_gc"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	PeakHeapBytes       uint64  `json:"peak_heap_bytes,omitempty"`
}

// MemSampler watches runtime memory over a run: it records the MemStats
// baseline at StartMemSampler, samples the live heap on a background
// goroutine to catch the peak, and reports the deltas at Stop.
type MemSampler struct {
	start runtime.MemStats
	peak  atomic.Uint64
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
	info  MemInfo
}

// StartMemSampler begins sampling the live heap every interval
// (default 10 ms when interval <= 0). Call Stop to end sampling and
// collect the MemInfo.
func StartMemSampler(interval time.Duration) *MemSampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s := &MemSampler{done: make(chan struct{})}
	runtime.ReadMemStats(&s.start)
	s.peak.Store(s.start.HeapAlloc)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				s.raisePeak(m.HeapAlloc)
			}
		}
	}()
	return s
}

func (s *MemSampler) raisePeak(v uint64) {
	for {
		old := s.peak.Load()
		if v <= old || s.peak.CompareAndSwap(old, v) {
			return
		}
	}
}

// Stop terminates the sampling goroutine and returns the window's
// MemInfo. Safe to call more than once; later calls return the same
// snapshot.
func (s *MemSampler) Stop() MemInfo {
	s.once.Do(func() {
		close(s.done)
		s.wg.Wait()
		var end runtime.MemStats
		runtime.ReadMemStats(&end)
		s.raisePeak(end.HeapAlloc)
		s.info = MemInfo{
			HeapAllocBytes:      end.HeapAlloc,
			TotalAllocBytes:     end.TotalAlloc - s.start.TotalAlloc,
			TotalAllocs:         end.Mallocs - s.start.Mallocs,
			NumGC:               end.NumGC - s.start.NumGC,
			GCPauseTotalSeconds: time.Duration(end.PauseTotalNs - s.start.PauseTotalNs).Seconds(),
			PeakHeapBytes:       s.peak.Load(),
		}
	})
	return s.info
}
