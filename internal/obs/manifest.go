package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"
)

// ManifestName is the file name every run writes next to its outputs.
const ManifestName = "manifest.json"

// Manifest records everything needed to compare and reproduce a run:
// the tool and code version, the full configuration and seed, the
// effective parallelism, per-stage wall timings, and content digests of
// every output file. OBSERVABILITY.md documents the schema.
type Manifest struct {
	// Tool is the producing command ("satgen", "satreport", ...).
	Tool string `json:"tool"`
	// Version identifies the build (module version plus VCS revision
	// when the binary was built with VCS stamping; see Version).
	Version string `json:"version"`
	// Created is the wall-clock completion time, RFC 3339.
	Created time.Time `json:"created"`
	// Seed is the run's deterministic seed.
	Seed uint64 `json:"seed"`
	// Parallelism is the effective pass-B worker count of the run (the
	// resolved value, never 0).
	Parallelism int `json:"parallelism,omitempty"`
	// Config is the full simulation configuration, marshaled as-is.
	Config any `json:"config,omitempty"`
	// Status is the run outcome: "ok", "degraded" (completed but dropped
	// work, see Errors), or "partial" (interrupted before completion). A
	// missing Status on an old manifest means "ok".
	Status string `json:"status,omitempty"`
	// Faults is the active fault schedule of the run, marshaled as-is;
	// absent for clear-sky runs.
	Faults any `json:"faults,omitempty"`
	// Errors lists what a degraded run dropped, one line each.
	Errors []string `json:"errors,omitempty"`
	// TimingsSeconds maps stage name to wall seconds (e.g. "pass_a",
	// "pass_b", "analyze").
	TimingsSeconds map[string]float64 `json:"timings_seconds"`
	// Outputs maps output file base name to "sha256:<hex>" digests.
	Outputs map[string]string `json:"outputs"`
	// Allocs maps stage name to the stage's allocation delta (bytes and
	// object counts from the runtime allocation counters, captured at the
	// stage boundaries — see internal/prof). Keys match TimingsSeconds.
	// Absent on manifests from older builds.
	Allocs map[string]AllocInfo `json:"allocs,omitempty"`
	// AllocBytesPerFlow is the derived per-flow allocation cost: the sum
	// of the Allocs byte deltas over the flow count of the run. 0/absent
	// when the run produced no flows or predates alloc accounting.
	AllocBytesPerFlow float64 `json:"alloc_bytes_per_flow,omitempty"`
	// Mem is the run's memory footprint (heap, allocation and GC deltas,
	// sampled peak heap); absent on manifests from older builds and on
	// the early status-partial manifest written before simulation.
	Mem *MemInfo `json:"mem,omitempty"`
	// Trace records the flow-trace output when the run had -trace set.
	Trace *TraceInfo `json:"trace,omitempty"`
	// Profiles records the profile artifacts of a run with -profile set.
	Profiles *ProfilesInfo `json:"profiles,omitempty"`
}

// AllocInfo is one stage's allocation delta: heap bytes and objects
// allocated between the stage's boundaries (runtime.MemStats TotalAlloc
// and Mallocs deltas; process-wide, so it attributes cleanly only across
// sequential stage boundaries).
type AllocInfo struct {
	Bytes   uint64 `json:"bytes"`
	Objects uint64 `json:"objects"`
}

// ProfilesInfo describes the profile artifacts a run captured under
// -profile DIR: the directory as given on the command line and the
// artifact files with their content digests. Profiles are observations
// of the run, not outputs of the simulation — they are not deterministic
// and are deliberately kept out of the Outputs digest map.
type ProfilesInfo struct {
	Dir string `json:"dir"`
	// Files maps artifact base name ("cpu.pprof", "heap.pprof", ...) to
	// "sha256:<hex>" digests.
	Files map[string]string `json:"files"`
}

// TraceInfo describes a run's flow-trace output (see internal/trace).
type TraceInfo struct {
	// File is the trace path as given on the command line.
	File string `json:"file"`
	// SHA256 is the trace file's content digest ("sha256:<hex>"); empty
	// when the file was missing or empty at manifest time.
	SHA256 string `json:"sha256,omitempty"`
	// Sample is the 1-in-N sampling rate the run used.
	Sample int `json:"sample"`
}

// NewManifest starts a manifest for a tool invocation.
func NewManifest(tool string, seed uint64) *Manifest {
	return &Manifest{
		Tool:           tool,
		Version:        Version(),
		Created:        time.Now().UTC(),
		Seed:           seed,
		TimingsSeconds: map[string]float64{},
		Outputs:        map[string]string{},
	}
}

// AddTiming records a stage wall time.
func (m *Manifest) AddTiming(stage string, d time.Duration) {
	m.TimingsSeconds[stage] = d.Seconds()
}

// AddAlloc records a stage allocation delta next to its wall timing.
func (m *Manifest) AddAlloc(stage string, a AllocInfo) {
	if m.Allocs == nil {
		m.Allocs = map[string]AllocInfo{}
	}
	m.Allocs[stage] = a
}

// AddOutput digests the file at path (sha256) and records it under its
// base name.
func (m *Manifest) AddOutput(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("obs: manifest output: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return fmt.Errorf("obs: manifest digest %s: %w", path, err)
	}
	m.Outputs[filepath.Base(path)] = "sha256:" + hex.EncodeToString(h.Sum(nil))
	return nil
}

// AddTrace records the run's trace file and sampling config. Unlike
// AddOutput it tolerates a missing or empty file — a sampled run can
// legitimately select zero flows — recording the path and rate without a
// digest in that case.
func (m *Manifest) AddTrace(path string, sampleN int) {
	m.Trace = &TraceInfo{File: path, Sample: sampleN}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		return
	}
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return
	}
	m.Trace.SHA256 = "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Write serializes the manifest as dir/manifest.json, atomically: a
// reader never sees a half-written manifest, even if the writer dies
// mid-call.
func (m *Manifest) Write(dir string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: manifest marshal: %w", err)
	}
	return WriteFileAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, err := w.Write(append(b, '\n'))
		return err
	})
}

// ReadManifest parses dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("obs: manifest parse: %w", err)
	}
	return &m, nil
}

// Version reports the build's identity from the embedded build info: the
// main module version, plus the VCS revision (short) and a "-dirty"
// marker when built from a modified tree. Binaries built without VCS
// stamping (e.g. plain `go test`) report "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		ver += "+" + rev
		if dirty {
			ver += "-dirty"
		}
	}
	return ver
}
