// Package obs is the pipeline's observability layer: a dependency-free
// metrics registry with counters, gauges, timers and fixed-bucket
// histograms, all goroutine-safe and cheap enough for the pass-B worker
// hot paths (one or two atomic operations per observation, no locks).
//
// Instrumented packages declare their metrics as package-level vars
// against the Default registry:
//
//	var mDelay = obs.NewHistogram("mac_uplink_access_delay_seconds",
//		"Sampled uplink MAC access delay.", "seconds", obs.LatencyBuckets())
//
// and observe them from any goroutine. Consumers take a point-in-time
// Snapshot, or serialize the whole registry with WritePrometheus
// (Prometheus text exposition format) or WriteJSON (the `-metrics` dump
// of the CLIs). OBSERVABILITY.md is the runbook documenting every metric
// the pipeline exports.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types.
type Kind string

// The four metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindTimer     Kind = "timer"
	KindHistogram Kind = "histogram"
)

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below UpperBound (non-cumulative; Snapshot reports raw per-bucket
// counts and the Prometheus writer accumulates them).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Snapshot is the point-in-time state of one metric.
type Snapshot struct {
	Name string `json:"-"`
	Kind Kind   `json:"kind"`
	Help string `json:"help,omitempty"`
	Unit string `json:"unit,omitempty"`
	// Value is the counter/gauge value, or the timer/histogram sum.
	Value float64 `json:"value"`
	// Count is the number of observations (timer and histogram only).
	Count int64 `json:"count,omitempty"`
	// Buckets are the histogram's raw per-bucket counts; the final bucket
	// has UpperBound +Inf.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns Value/Count for timers and histograms, 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Value / float64(s.Count)
}

// metric is the registry-internal interface all four kinds implement.
type metric interface {
	info() *meta
	snap() Snapshot
	reset()
}

type meta struct {
	name, help, unit string
	kind             Kind
}

func (m *meta) info() *meta { return m }

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing integer metric.
type Counter struct {
	meta
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) snap() Snapshot {
	return Snapshot{Name: c.name, Kind: KindCounter, Help: c.help, Unit: c.unit, Value: float64(c.v.Load())}
}
func (c *Counter) reset() { c.v.Store(0) }

// ---------------------------------------------------------------------
// Gauge

// Gauge is a settable float metric.
type Gauge struct {
	meta
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetDuration stores d in seconds.
func (g *Gauge) SetDuration(d time.Duration) { g.Set(d.Seconds()) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add adds v to the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) snap() Snapshot {
	return Snapshot{Name: g.name, Kind: KindGauge, Help: g.help, Unit: g.unit, Value: g.Value()}
}
func (g *Gauge) reset() { g.bits.Store(0) }

// ---------------------------------------------------------------------
// Timer

// Timer accumulates durations: total seconds and observation count. It is
// the cheap "how much wall time went here, how often" metric; use a
// Histogram when the shape of the distribution matters.
type Timer struct {
	meta
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Start returns a stop function that records the elapsed time when called.
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

func (t *Timer) snap() Snapshot {
	return Snapshot{Name: t.name, Kind: KindTimer, Help: t.help, Unit: t.unit,
		Value: time.Duration(t.nanos.Load()).Seconds(), Count: t.count.Load()}
}
func (t *Timer) reset() { t.count.Store(0); t.nanos.Store(0) }

// ---------------------------------------------------------------------
// Histogram

// Histogram counts observations into fixed buckets (plus an implicit +Inf
// bucket) and tracks the sum. Observation is two atomic adds and a CAS
// loop for the float sum.
type Histogram struct {
	meta
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) snap() Snapshot {
	s := Snapshot{Name: h.name, Kind: KindHistogram, Help: h.help, Unit: h.unit,
		Value: h.Sum(), Count: h.count.Load()}
	s.Buckets = make([]Bucket, len(h.counts))
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return s
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start>0, factor>1, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width>0, n>=1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// LatencyBuckets is the standard latency bucketing used by the pipeline's
// delay histograms: 1 ms to ~65 s, doubling.
func LatencyBuckets() []float64 { return ExpBuckets(0.001, 2, 17) }

// RatioBuckets is the standard bucketing for [0,1] ratios (utilization,
// hit rates): 0.1 steps.
func RatioBuckets() []float64 { return LinearBuckets(0.1, 0.1, 10) }

// ---------------------------------------------------------------------
// Registry

// Registry holds named metrics. Registration is idempotent: re-declaring
// a name with the same kind returns the existing metric (so tests and
// repeated runs in one process share state); a kind mismatch panics.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: map[string]metric{}} }

// Default is the process-wide registry all package-level metrics use.
var Default = NewRegistry()

func register[M metric](r *Registry, name string, make func() M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ex, ok := r.metrics[name]; ok {
		m, ok := ex.(M)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help, unit string) *Counter {
	return register(r, name, func() *Counter {
		return &Counter{meta: meta{name: name, help: help, unit: unit, kind: KindCounter}}
	})
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help, unit string) *Gauge {
	return register(r, name, func() *Gauge {
		return &Gauge{meta: meta{name: name, help: help, unit: unit, kind: KindGauge}}
	})
}

// Timer registers (or returns) a timer. Timer names end in _seconds by
// convention.
func (r *Registry) Timer(name, help string) *Timer {
	return register(r, name, func() *Timer {
		return &Timer{meta: meta{name: name, help: help, unit: "seconds", kind: KindTimer}}
	})
}

// Histogram registers (or returns) a histogram with the given strictly
// increasing bucket upper bounds.
func (r *Registry) Histogram(name, help, unit string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	return register(r, name, func() *Histogram {
		b := append([]float64(nil), bounds...)
		return &Histogram{
			meta:   meta{name: name, help: help, unit: unit, kind: KindHistogram},
			bounds: b,
			counts: make([]atomic.Int64, len(b)+1),
		}
	})
}

// Get returns the snapshot of one metric by name.
func (r *Registry) Get(name string) (Snapshot, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		return Snapshot{}, false
	}
	return m.snap(), true
}

// Snapshot returns all metrics sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.RLock()
	out := make([]Snapshot, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.snap())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every metric (registrations stay). Intended for tests and
// for isolating successive runs in one process.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.metrics {
		m.reset()
	}
}

// Package-level helpers against the Default registry.

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help, unit string) *Counter { return Default.Counter(name, help, unit) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help, unit string) *Gauge { return Default.Gauge(name, help, unit) }

// NewTimer registers a timer on the Default registry.
func NewTimer(name, help string) *Timer { return Default.Timer(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help, unit string, bounds []float64) *Histogram {
	return Default.Histogram(name, help, unit, bounds)
}
