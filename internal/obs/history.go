package obs

// History gives the registry a past: a bounded ring of periodic
// snapshots so a dashboard (or a debugging curl) can see how rates and
// queue depths evolved, not just where they sit now. The live daemon
// drives Sample on a sim-time cadence; readers pull Recent through
// `GET /metrics/history`.

import "sync"

// Point is one registry snapshot: counters and gauges flatten to their
// value; timers and histograms contribute their sum plus a
// "<name>_count" observation count, so rates are derivable by
// differencing adjacent points.
type Point struct {
	// T is the sample time in simulated seconds since daemon start.
	T float64 `json:"t"`
	// Values maps metric name to its sampled value.
	Values map[string]float64 `json:"values"`
}

// DefaultHistoryKeep bounds the sample ring when no size is configured.
const DefaultHistoryKeep = 240

// History samples a registry into a bounded FIFO ring. Safe for
// concurrent Sample and Recent calls.
type History struct {
	reg  *Registry
	keep int

	mu      sync.Mutex
	points  []Point
	samples uint64
}

// NewHistory builds a sampler over reg keeping the last keep points
// (keep < 1 selects DefaultHistoryKeep; nil reg uses Default).
func NewHistory(reg *Registry, keep int) *History {
	if reg == nil {
		reg = Default
	}
	if keep < 1 {
		keep = DefaultHistoryKeep
	}
	return &History{reg: reg, keep: keep}
}

// Sample snapshots the registry at time t, evicting the oldest point
// once the ring is full.
func (h *History) Sample(t float64) {
	if h == nil {
		return
	}
	snaps := h.reg.Snapshot()
	vals := make(map[string]float64, len(snaps)*5/4)
	for _, s := range snaps {
		vals[s.Name] = s.Value
		if s.Kind == KindTimer || s.Kind == KindHistogram {
			vals[s.Name+"_count"] = float64(s.Count)
		}
	}
	p := Point{T: t, Values: vals}
	h.mu.Lock()
	if len(h.points) == h.keep {
		copy(h.points, h.points[1:])
		h.points[len(h.points)-1] = p
	} else {
		h.points = append(h.points, p)
	}
	h.samples++
	h.mu.Unlock()
}

// Samples reports how many snapshots have ever been taken.
func (h *History) Samples() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Recent returns the retained points oldest-first. When names is
// non-empty each point's value map is filtered down to those metrics,
// keeping `/metrics/history?metrics=...` responses small.
func (h *History) Recent(names []string) []Point {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Point, len(h.points))
	if len(names) == 0 {
		copy(out, h.points)
		return out
	}
	for i, p := range h.points {
		vals := make(map[string]float64, len(names))
		for _, n := range names {
			if v, ok := p.Values[n]; ok {
				vals[n] = v
			}
		}
		out[i] = Point{T: p.T, Values: vals}
	}
	return out
}
