package obs

import (
	"testing"
	"time"
)

func TestHistorySamplesAndEvicts(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hist_flows_total", "", "flows")
	g := reg.Gauge("hist_depth", "", "items")

	h := NewHistory(reg, 3)
	for i := 1; i <= 5; i++ {
		c.Inc()
		g.Set(float64(i * 10))
		h.Sample(float64(i))
	}
	if h.Samples() != 5 {
		t.Fatalf("Samples = %d, want 5", h.Samples())
	}
	pts := h.Recent(nil)
	if len(pts) != 3 {
		t.Fatalf("ring holds %d points, want keep=3", len(pts))
	}
	// Oldest-first: samples 3, 4, 5 survive.
	for i, wantT := range []float64{3, 4, 5} {
		p := pts[i]
		if p.T != wantT {
			t.Fatalf("point %d at t=%v, want %v", i, p.T, wantT)
		}
		if p.Values["hist_flows_total"] != wantT {
			t.Errorf("counter at t=%v sampled %v", wantT, p.Values["hist_flows_total"])
		}
		if p.Values["hist_depth"] != wantT*10 {
			t.Errorf("gauge at t=%v sampled %v", wantT, p.Values["hist_depth"])
		}
	}
}

func TestHistoryFlattensTimersAndFilters(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timer("hist_rtt_seconds", "")
	reg.Counter("hist_other_total", "", "x").Inc()
	tm.Observe(500 * time.Millisecond)
	tm.Observe(600 * time.Millisecond)

	h := NewHistory(reg, 8)
	h.Sample(1)

	pts := h.Recent(nil)
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	v := pts[0].Values
	if v["hist_rtt_seconds_count"] != 2 {
		t.Errorf("timer count = %v, want 2", v["hist_rtt_seconds_count"])
	}
	if sum := v["hist_rtt_seconds"]; sum < 1.05 || sum > 1.15 {
		t.Errorf("timer sum = %v, want ~1.1", sum)
	}

	// Name filtering trims each point's map; unknown names are ignored.
	got := h.Recent([]string{"hist_rtt_seconds_count", "no_such_metric"})
	if len(got) != 1 {
		t.Fatalf("filtered points = %d", len(got))
	}
	fv := got[0].Values
	if len(fv) != 1 || fv["hist_rtt_seconds_count"] != 2 {
		t.Errorf("filtered values = %v", fv)
	}
}

func TestHistoryNilSafeAndDefaults(t *testing.T) {
	var h *History
	h.Sample(1)
	if h.Recent(nil) != nil || h.Samples() != 0 {
		t.Error("nil History not inert")
	}
	d := NewHistory(nil, 0)
	if d.keep != DefaultHistoryKeep {
		t.Errorf("keep default = %d, want %d", d.keep, DefaultHistoryKeep)
	}
	if d.reg != Default {
		t.Error("nil registry must select Default")
	}
}
