package satwatch

// The benchmark harness: one benchmark per paper table/figure (DESIGN.md
// §3) plus the ablation benches (A1-A4). Each benchmark regenerates its
// experiment from a shared reference run and reports the experiment's
// headline numbers via b.ReportMetric, so `go test -bench .` prints the
// rows/series the paper reports next to the timing.
//
// Run with: go test -bench=. -benchmem

import (
	"io"
	"sync"
	"testing"

	"satwatch/internal/analytics"
	"satwatch/internal/bench"
	"satwatch/internal/dnssim"
	"satwatch/internal/netsim"
	"satwatch/internal/report"
	"satwatch/internal/services"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

var (
	benchOnce sync.Once
	benchRes  *Results
	benchErr  error
)

// benchResults runs the shared bench-scale pipeline once (120 customers,
// 1 day: a few seconds).
func benchResults(b *testing.B) *Results {
	b.Helper()
	benchOnce.Do(func() {
		p := New(WithCustomers(120), WithDays(1), WithSeed(42))
		benchRes, benchErr = p.Run()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	// The full generate→probe→analyze pipeline at small scale. No tracer
	// is attached, so this IS the tracing-disabled baseline: the only cost
	// flight recording adds here is one nil-check per flow in the worker
	// loop (see internal/trace BenchmarkStartDisabled for that path in
	// isolation). Compare against BenchmarkPipelineEndToEndTraced to see
	// the overhead of recording every flow.
	for i := 0; i < b.N; i++ {
		p := New(WithCustomers(30), WithDays(1), WithSeed(uint64(i)))
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Dataset.Flows)), "flows")
	}
}

// BenchmarkPipelineNoIntentCache is BenchmarkPipelineEndToEnd with the
// pass-A→pass-B intent cache disabled, so every customer-day workload is
// generated twice (the pre-cache pipeline shape). The delta against
// BenchmarkPipelineEndToEnd isolates the cache's contribution.
func BenchmarkPipelineNoIntentCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := New(WithCustomers(30), WithDays(1), WithSeed(uint64(i)), WithIntentCacheBytes(-1))
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Dataset.Flows)), "flows")
	}
}

// BenchmarkPipelineEndToEndTraced is the same pipeline with the flight
// recorder sampling every flow — the worst-case tracing overhead.
func BenchmarkPipelineEndToEndTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.New(io.Discard, 1)
		p := New(WithCustomers(30), WithDays(1), WithSeed(uint64(i)), WithTracer(tr))
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Dataset.Flows)), "flows")
	}
}

func BenchmarkTable1ProtocolBreakdown(b *testing.B) {
	r := benchResults(b)
	var t1 report.Table1
	for i := 0; i < b.N; i++ {
		t1 = report.BuildTable1(r.Dataset)
	}
	b.ReportMetric(t1.SharePct[tstat.ProtoHTTPS], "https_pct")
	b.ReportMetric(t1.SharePct[tstat.ProtoQUIC], "quic_pct")
	b.ReportMetric(t1.SharePct[tstat.ProtoHTTP], "http_pct")
}

func BenchmarkFig2CountryBreakdown(b *testing.B) {
	r := benchResults(b)
	var f report.Fig2
	for i := 0; i < b.N; i++ {
		f = report.BuildFig2(r.Dataset)
	}
	if cd, ok := f.Row("CD"); ok {
		b.ReportMetric(cd.VolumeSharePct, "congo_vol_pct")
		b.ReportMetric(cd.CustomerSharePct, "congo_cust_pct")
	}
}

func BenchmarkFig3ProtocolPerCountry(b *testing.B) {
	r := benchResults(b)
	var f report.Fig3
	for i := 0; i < b.N; i++ {
		f = report.BuildFig3(r.Dataset)
	}
	b.ReportMetric(f.SharePct["DE"][tstat.ProtoTCPOther], "de_othertcp_pct")
}

func BenchmarkFig4DailyTrends(b *testing.B) {
	r := benchResults(b)
	var f report.Fig4
	for i := 0; i < b.N; i++ {
		f = report.BuildFig4(r.Dataset)
	}
	b.ReportMetric(float64(f.PeakHourUTC("CD")), "congo_peak_utc_h")
	b.ReportMetric(float64(f.PeakHourUTC("ES")), "spain_peak_utc_h")
}

func BenchmarkFig5PerCustomerCCDF(b *testing.B) {
	r := benchResults(b)
	var f report.Fig5
	for i := 0; i < b.N; i++ {
		f = report.BuildFig5(r.Dataset)
	}
	if s := f.Flows["ES"]; s != nil {
		b.ReportMetric(100*s.CDF(250), "spain_below_knee_pct")
	}
	if s := f.Flows["CD"]; s != nil {
		b.ReportMetric(s.Median(), "congo_median_flows")
	}
}

func BenchmarkFig6ServicePopularity(b *testing.B) {
	r := benchResults(b)
	var f report.Fig6
	for i := 0; i < b.N; i++ {
		f = report.BuildFig6(r.Dataset)
	}
	b.ReportMetric(f.Pct["Whatsapp"]["CD"], "whatsapp_cd_pct")
	b.ReportMetric(f.Pct["Netflix"]["IE"], "netflix_ie_pct")
}

func BenchmarkFig7CategoryVolumes(b *testing.B) {
	r := benchResults(b)
	var f report.Fig7
	for i := 0; i < b.N; i++ {
		f = report.BuildFig7(r.Dataset)
	}
	b.ReportMetric(f.Median(services.CategoryChat, "CD")/1e6, "chat_cd_median_mb")
	b.ReportMetric(f.Median(services.CategoryChat, "ES")/1e6, "chat_es_median_mb")
}

func BenchmarkFig8aSatelliteRTT(b *testing.B) {
	r := benchResults(b)
	var f report.Fig8a
	for i := 0; i < b.N; i++ {
		f = report.BuildFig8a(r.Dataset)
	}
	if s := f.Peak["CD"]; s != nil && s.Len() > 0 {
		b.ReportMetric(s.Median(), "congo_peak_median_s")
		b.ReportMetric(100*s.CCDF(2.0), "congo_peak_over2s_pct")
	}
	if s := f.Night["ES"]; s != nil && s.Len() > 0 {
		b.ReportMetric(100*s.CDF(1.0), "spain_night_sub1s_pct")
	}
}

func BenchmarkFig8bBeamRTT(b *testing.B) {
	r := benchResults(b)
	var f report.Fig8b
	for i := 0; i < b.N; i++ {
		f = report.BuildFig8b(r.Dataset, r.Output.Beams)
	}
	worst := 0.0
	for _, row := range f.Rows {
		if row.MedianRTTs > worst {
			worst = row.MedianRTTs
		}
	}
	b.ReportMetric(worst, "worst_beam_median_s")
	b.ReportMetric(float64(len(f.Rows)), "beams")
}

func BenchmarkFig9GroundRTT(b *testing.B) {
	r := benchResults(b)
	var f report.Fig9
	for i := 0; i < b.N; i++ {
		f = report.BuildFig9(r.Dataset)
	}
	if s := f.Samples["NG"]; s != nil && s.Len() > 0 {
		b.ReportMetric(s.Median()*1e3, "nigeria_median_ms")
		b.ReportMetric(100*s.CCDF(0.25), "nigeria_hairpin_pct")
	}
	if s := f.Samples["ES"]; s != nil && s.Len() > 0 {
		b.ReportMetric(s.Median()*1e3, "spain_median_ms")
	}
}

func BenchmarkFig10DNSResolvers(b *testing.B) {
	r := benchResults(b)
	var f report.Fig10
	for i := 0; i < b.N; i++ {
		f = report.BuildFig10(r.Dataset)
	}
	b.ReportMetric(f.SharePct["CD"][dnssim.ResolverGoogle], "google_cd_pct")
	b.ReportMetric(f.MedianResponse[dnssim.ResolverOperator]*1e3, "operator_median_ms")
}

func BenchmarkTable2ResolverImpact(b *testing.B) {
	r := benchResults(b)
	var t report.ResolverImpact
	for i := 0; i < b.N; i++ {
		t = report.BuildResolverImpact(r.Dataset, "GB", "NG")
	}
	if v, ok := t.Cell("GB", dnssim.ResolverOperator, "apple.com"); ok {
		b.ReportMetric(v*1e3, "gb_apple_operator_ms")
	}
	if v, ok := t.Cell("NG", dnssim.ResolverGoogle, "apple.com"); ok {
		b.ReportMetric(v*1e3, "ng_apple_google_ms")
	}
}

func BenchmarkTables45AppendixRTT(b *testing.B) {
	r := benchResults(b)
	var t report.ResolverImpact
	for i := 0; i < b.N; i++ {
		t = report.BuildResolverImpact(r.Dataset, "CD", "ZA", "NG", "GB")
	}
	b.ReportMetric(float64(len(t.AvgRTT)), "cells")
	b.ReportMetric(float64(len(t.Domains())), "domains")
}

func BenchmarkFig11Throughput(b *testing.B) {
	r := benchResults(b)
	var f report.Fig11
	for i := 0; i < b.N; i++ {
		f = report.BuildFig11(r.Dataset, 5<<20)
	}
	if s := f.All["ES"]; s != nil && s.Len() > 0 {
		b.ReportMetric(s.Median()/1e6, "spain_median_mbps")
	}
	if s := f.All["CD"]; s != nil && s.Len() > 0 {
		b.ReportMetric(s.Median()/1e6, "congo_median_mbps")
	}
}

// --- Ablations (DESIGN.md A1-A4) ----------------------------------------

// ablation caches one simulation per variant.
var (
	ablMu    sync.Mutex
	ablCache = map[string]*Results{}
)

func ablationRun(b *testing.B, name string, opts ...Option) *Results {
	b.Helper()
	ablMu.Lock()
	defer ablMu.Unlock()
	if res, ok := ablCache[name]; ok {
		return res
	}
	opts = append([]Option{WithCustomers(60), WithDays(1), WithSeed(7)}, opts...)
	res, err := New(opts...).Run()
	if err != nil {
		b.Fatal(err)
	}
	ablCache[name] = res
	return res
}

// congoPeakMedian extracts the A1/A4 headline metric.
func congoPeakMedian(res *Results) float64 {
	if s := res.Fig8a.Peak["CD"]; s != nil && s.Len() > 0 {
		return s.Median()
	}
	return 0
}

func BenchmarkAblationPEP(b *testing.B) {
	base := ablationRun(b, "base")
	nopep := ablationRun(b, "nopep", WithoutPEP())
	var f report.Fig8a
	for i := 0; i < b.N; i++ {
		f = report.BuildFig8a(nopep.Dataset)
	}
	_ = f
	b.ReportMetric(congoPeakMedian(base), "with_pep_s")
	b.ReportMetric(congoPeakMedian(nopep), "without_pep_s")
}

func BenchmarkAblationMAC(b *testing.B) {
	base := ablationRun(b, "base")
	nomac := ablationRun(b, "nomac", WithoutMAC())
	var f report.Fig8a
	for i := 0; i < b.N; i++ {
		f = report.BuildFig8a(nomac.Dataset)
	}
	_ = f
	b.ReportMetric(congoPeakMedian(base), "with_mac_s")
	b.ReportMetric(congoPeakMedian(nomac), "ideal_access_s")
}

// africanHairpinShare is the A2 headline: share of African traffic above
// 250 ms ground RTT.
func africanHairpinShare(res *Results) float64 {
	over, n := 0, 0
	for i := range res.Dataset.Flows {
		f := &res.Dataset.Flows[i]
		if f.GroundRTT.Samples == 0 {
			continue
		}
		if f.Country == "CD" || f.Country == "NG" || f.Country == "ZA" {
			n++
			if f.GroundRTT.Avg.Seconds() > 0.25 {
				over++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(over) / float64(n)
}

func BenchmarkAblationAfricanGroundStation(b *testing.B) {
	base := ablationRun(b, "base")
	local := ablationRun(b, "afgw", WithAfricanGroundStation())
	var f report.Fig9
	for i := 0; i < b.N; i++ {
		f = report.BuildFig9(local.Dataset)
	}
	_ = f
	b.ReportMetric(africanHairpinShare(base), "single_gw_hairpin_pct")
	b.ReportMetric(africanHairpinShare(local), "african_gw_hairpin_pct")
}

// geoDNSMean is the A3 headline: mean ground RTT of Nigerian flows to
// GeoDNS-hosted domains.
func geoDNSMean(res *Results) float64 {
	var sum float64
	n := 0
	for key, v := range res.Dataset.GroundRTTByDomainResolver() {
		if key.Country != "NG" {
			continue
		}
		for _, x := range v {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * 1e3
}

func BenchmarkAblationForceOperatorDNS(b *testing.B) {
	base := ablationRun(b, "base")
	forced := ablationRun(b, "opdns", WithForcedOperatorDNS())
	var t report.ResolverImpact
	for i := 0; i < b.N; i++ {
		t = report.BuildResolverImpact(forced.Dataset, "NG")
	}
	_ = t
	b.ReportMetric(geoDNSMean(base), "open_resolvers_ms")
	b.ReportMetric(geoDNSMean(forced), "operator_dns_ms")
}

// BenchmarkTrackerThroughput measures the probe's segment-event path.
func BenchmarkTrackerThroughput(b *testing.B) {
	out, err := netsim.Run(netsim.Config{Customers: 20, Days: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	_ = out
	b.ResetTimer()
	// Re-running the simulation measures generation+tracking end to end.
	for i := 0; i < b.N; i++ {
		out, err := netsim.Run(netsim.Config{Customers: 20, Days: 1, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(out.Flows)), "flows")
	}
}

// BenchmarkDatasetEnrichment measures the analytics join.
func BenchmarkDatasetEnrichment(b *testing.B) {
	r := benchResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := analytics.NewDataset(r.Output, 1)
		if len(ds.Flows) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkScenario runs matrix scenarios from the performance
// observatory (internal/bench) through the standard Go benchmark harness,
// so `go test -bench=Scenario` reports the same per-scenario numbers
// satbench snapshots into BENCH_*.json.
func benchmarkScenario(b *testing.B, name string) {
	b.Helper()
	sc, ok := bench.ByName(name, 42)
	if !ok {
		b.Fatalf("unknown scenario %q", name)
	}
	var res bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FlowsPerSecond, "flows/s")
	b.ReportMetric(float64(res.Mem.PeakHeapBytes)/(1<<20), "peak_heap_MB")
}

func BenchmarkScenarioSmallClearP1(b *testing.B)   { benchmarkScenario(b, "small-clear-p1") }
func BenchmarkScenarioMediumStressP1(b *testing.B) { benchmarkScenario(b, "medium-stress-p1") }
