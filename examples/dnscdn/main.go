// Dnscdn: the §6.3-§6.4 study — how the choice of DNS resolver, combined
// with the forced routing through the single ground station in Italy,
// breaks CDN server selection for African customers; and what forcing the
// operator's resolver (the paper's proposed fix) would recover.
package main

import (
	"fmt"
	"log"

	"satwatch"
	"satwatch/internal/dnssim"
)

func main() {
	base, err := satwatch.New(
		satwatch.WithCustomers(250), satwatch.WithDays(1), satwatch.WithSeed(5),
	).Run()
	if err != nil {
		log.Fatal(err)
	}
	forced, err := satwatch.New(
		satwatch.WithCustomers(250), satwatch.WithDays(1), satwatch.WithSeed(5),
		satwatch.WithForcedOperatorDNS(),
	).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(base.Fig10.Render())
	fmt.Println()
	fmt.Print(base.Table2.Render())
	fmt.Println()

	// The paper's Table 2 headline: the same GeoDNS domain lands on very
	// different servers depending on the resolver's view of the client.
	fmt.Println("Nigeria, apple.com (GeoDNS) — average ground RTT by resolver:")
	for _, id := range []dnssim.ResolverID{
		dnssim.ResolverOperator, dnssim.ResolverGoogle, dnssim.ResolverNigerian, dnssim.Resolver114DNS,
	} {
		if v, ok := base.Table2.Cell("NG", id, "apple.com"); ok {
			fmt.Printf("  %-12s %6.1f ms\n", id, v*1e3)
		}
	}

	mean := func(r *satwatch.Results) float64 {
		var sum float64
		n := 0
		for key, xs := range r.Dataset.GroundRTTByDomainResolver() {
			if key.Country != "NG" {
				continue
			}
			for _, x := range xs {
				sum += x
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n) * 1e3
	}
	fmt.Printf("\nAblation A3 — forcing the operator resolver for everyone:\n")
	fmt.Printf("  Nigerian mean ground RTT: %.1f ms (open resolvers) → %.1f ms (operator DNS)\n",
		mean(base), mean(forced))
}
