// Peplive: drive the working RFC 3135 PEP implementation over a real
// 550 ms emulated satellite link using actual TCP sockets — the same
// architecture the paper's operator runs (§2.1). An HTTP-ish exchange
// shows the handshake acceleration: the client's connect() returns
// immediately because the CPE terminates TCP locally.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"satwatch/internal/linkemu"
	"satwatch/internal/pep"
	"satwatch/internal/tunnel"
)

func main() {
	// An origin "web server" that answers one request per connection.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := origin.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				body := "you asked for " + strings.TrimSpace(line) + " via a GEO satellite\n"
				fmt.Fprintf(c, "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
			}(c)
		}
	}()

	// The satellite segment (≈540 ms RTT) and the PEP pair across it.
	cpeSide, gwSide := linkemu.NewPair(linkemu.GEO(), linkemu.GEO(), 99)
	cfg := tunnel.Config{RTO: 1500 * time.Millisecond, Window: 256, MaxPayload: 1200}
	cpe := pep.NewCPE(cpeSide, cfg, nil)
	gw := pep.NewGateway(gwSide, cfg, nil, nil)
	go gw.Serve()
	defer cpe.Close()
	defer gw.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go cpe.ServeListener(ln, origin.Addr().String())

	// The "customer device" speaks plain TCP to the CPE.
	t0 := time.Now()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	tConnect := time.Since(t0)

	fmt.Fprintf(conn, "GET /hello\n")
	tSent := time.Since(t0)
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		log.Fatal(err)
	}
	tFirstByte := time.Since(t0)

	fmt.Println("RFC 3135 PEP over an emulated 550 ms GEO link:")
	fmt.Printf("  connect():       %8v   ← local 3WHS at the CPE, no satellite round trip\n", tConnect.Round(time.Millisecond))
	fmt.Printf("  request sent:    %8v   ← early data accepted immediately\n", tSent.Round(time.Millisecond))
	fmt.Printf("  first response:  %8v   ← one satellite round trip, unavoidable physics\n", tFirstByte.Round(time.Millisecond))
	fmt.Printf("  status line:     %q\n", strings.TrimSpace(resp))
}
