// Countrystudy: the usage-habits analysis of the paper's §4-§5, side by
// side for Congo and Spain — diurnal patterns, per-customer flow counts,
// and the chat/social volume gap caused by community WiFi access points.
package main

import (
	"fmt"
	"log"

	"satwatch"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

func main() {
	p := satwatch.New(
		satwatch.WithCustomers(250),
		satwatch.WithDays(2),
		satwatch.WithSeed(11),
	)
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Fig4.Render())
	fmt.Println()
	fmt.Print(res.Fig5.Render())
	fmt.Println()
	fmt.Print(res.Fig6.Render())
	fmt.Println()

	fmt.Println("The community-AP effect (paper §4-§5):")
	for _, code := range []geo.CountryCode{"CD", "ES"} {
		name := code
		flows := res.Fig5.Flows[code]
		chat := res.Fig7.Median(services.CategoryChat, code)
		social := res.Fig7.Median(services.CategorySocial, code)
		fmt.Printf("  %s: median %4.0f flows/day, chat median %7.1f MB/day, social median %7.1f MB/day\n",
			name, flows.Median(), chat/1e6, social/1e6)
	}
	cd := res.Fig7.Median(services.CategoryChat, "CD")
	es := res.Fig7.Median(services.CategoryChat, "ES")
	fmt.Printf("  → Congolese chat volume is %.0fx the Spanish median (paper: 250 MB vs <10 MB)\n", cd/es)
}
