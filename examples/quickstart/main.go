// Quickstart: run a small end-to-end reproduction — generate a synthetic
// SatCom deployment, measure it with the Tstat-style probe, and print the
// headline results (protocol mix, satellite RTT, DNS resolvers).
package main

import (
	"fmt"
	"log"

	"satwatch"
)

func main() {
	p := satwatch.New(
		satwatch.WithCustomers(120),
		satwatch.WithDays(1),
		satwatch.WithSeed(7),
	)
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Table1.Render())
	fmt.Println()
	fmt.Print(res.Fig8a.Render())
	fmt.Println()
	fmt.Print(res.Fig10.Render())

	fmt.Printf("\n%d flows from %d customers measured; Congo peak-hour satellite RTT median: %.2fs\n",
		len(res.Dataset.Flows), len(res.Output.Meta), res.Fig8a.Peak["CD"].Median())
}
