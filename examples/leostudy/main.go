// Leostudy: the GEO-vs-LEO comparison behind EXPERIMENTS.md — the same
// deployment run under both constellation backends with equal seeds, then
// diffed on the measurements an orbit change actually moves: the
// satellite-RTT fingerprint per country, the handshake latency the probe
// sees, and the fault timeline (LEO runs carry satellite handovers).
package main

import (
	"fmt"
	"log"

	"satwatch"
	"satwatch/internal/faults"
)

func run(constellation string) *satwatch.Results {
	p := satwatch.New(
		satwatch.WithCustomers(250),
		satwatch.WithDays(1),
		satwatch.WithSeed(11),
		satwatch.WithConstellation(constellation),
	)
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	geoRes := run("geo")
	leoRes := run("leo")

	fmt.Println("=== GEO ===")
	fmt.Print(geoRes.Signatures.Render())
	fmt.Println()
	fmt.Println("=== LEO ===")
	fmt.Print(leoRes.Signatures.Render())
	fmt.Println()

	fmt.Println("Per-country median satellite RTT, GEO vs LEO (equal seed):")
	leoByCountry := map[string]float64{}
	for _, r := range leoRes.Signatures.Rows {
		leoByCountry[string(r.Country)] = r.Median
	}
	for _, g := range geoRes.Signatures.Rows {
		l, ok := leoByCountry[string(g.Country)]
		if !ok {
			continue
		}
		fmt.Printf("  %s: %6.1f ms → %5.1f ms (%.0fx lower)\n",
			g.Country, g.Median*1e3, l*1e3, g.Median/l)
	}

	handovers := 0
	if s := leoRes.Output.Faults; s != nil {
		for _, e := range s.Events {
			if e.Kind == faults.LEOHandover {
				handovers++
			}
		}
	}
	fmt.Printf("\nLEO fault timeline: %d satellite handovers in the window "+
		"(GEO schedule: %d events — a fixed bent pipe never hands over)\n",
		handovers, geoEvents(geoRes))
}

func geoEvents(res *satwatch.Results) int {
	if res.Output.Faults == nil {
		return 0
	}
	return len(res.Output.Faults.Events)
}
