package satwatch

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"satwatch/internal/obs"
	"satwatch/internal/prof"
	"satwatch/internal/trace"

	// The tunnel/PEP socket stack and the live daemon are not on the
	// satwatch.go pipeline path; import them for registration so the doc
	// cross-checks cover their metrics.
	_ "satwatch/internal/live"
	_ "satwatch/internal/pep"
	_ "satwatch/internal/tunnel"
)

// TestObservabilityDocCoversRegistry asserts that OBSERVABILITY.md
// documents every metric the pipeline registers: importing this package
// pulls in every instrumented internal package, so the Default registry
// at test time is exactly the metric set a `-metrics` dump can contain.
func TestObservabilityDocCoversRegistry(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("OBSERVABILITY.md must exist at the repo root: %v", err)
	}
	text := string(doc)
	snaps := obs.Default.Snapshot()
	if len(snaps) == 0 {
		t.Fatal("no metrics registered — instrumentation missing?")
	}
	for _, s := range snaps {
		if !strings.Contains(text, "`"+s.Name+"`") {
			t.Errorf("metric %q (%s) is not documented in OBSERVABILITY.md", s.Name, s.Kind)
		}
	}
}

// TestObservabilityDocHasNoStaleMetrics walks the doc's metric table rows
// and flags documented names that no longer exist in the registry (the
// satpep command registers its two gauges only in its own binary, so they
// are allowed here).
func TestObservabilityDocHasNoStaleMetrics(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, s := range obs.Default.Snapshot() {
		registered[s.Name] = true
	}
	allowed := map[string]bool{
		"satpep_handshake_seconds": true,
		"satpep_download_seconds":  true,
		// Manifest timings/allocs stage key, not a metric.
		"mac_prebuild": true,
	}
	re := regexp.MustCompile("`((?:netsim|mac|pep|phy|shaper|tstat|dnssim|satpep|tunnel|live)_[a-z0-9_]+)`")
	for _, m := range re.FindAllStringSubmatch(string(doc), -1) {
		name := m[1]
		if !registered[name] && !allowed[name] {
			t.Errorf("OBSERVABILITY.md documents %q, which is not registered", name)
		}
	}
}

// TestObservabilityDocCoversProfileArtifacts pins the -profile artifact
// set: every file a capture writes must be documented in the runbook's
// Profiling section by its exact name.
func TestObservabilityDocCoversProfileArtifacts(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, name := range prof.ArtifactNames() {
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("profile artifact %q is not documented in OBSERVABILITY.md", name)
		}
	}
}

// TestDesignDocCoversStageLabels pins the pprof stage-label contract:
// every label prof can attach must be documented in DESIGN.md's
// stage-label table, so profile consumers can rely on the names.
func TestDesignDocCoversStageLabels(t *testing.T) {
	doc, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, label := range prof.StageLabels() {
		if !strings.Contains(text, "`"+label+"`") {
			t.Errorf("stage label %q is not documented in DESIGN.md", label)
		}
	}
}

// TestObservabilityDocCoversSpans extends the runbook cross-check to the
// flight recorder: every span name the pipeline can emit must be
// documented in OBSERVABILITY.md's Tracing section, and every span-like
// name the doc mentions must exist in trace.SpanNames().
func TestObservabilityDocCoversSpans(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	known := map[string]bool{}
	for _, name := range trace.SpanNames() {
		known[name] = true
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("span %q is not documented in OBSERVABILITY.md", name)
		}
	}
	// Span names are "<component>.<snake_case>"; the metric cross-check
	// above covers the underscore-only metric names.
	re := regexp.MustCompile("`((?:geo|mac|pep|shaper|cdn|tstat|live)\\.[a-z0-9_]+)`")
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		if !known[m[1]] {
			t.Errorf("OBSERVABILITY.md documents span %q, which the pipeline cannot emit", m[1])
		}
	}
}
