module satwatch

go 1.22
