package satwatch

import (
	"strings"
	"testing"

	"satwatch/internal/analytics"
)

func TestOptionsWiring(t *testing.T) {
	p := New(
		WithCustomers(77), WithDays(3), WithSeed(9),
		WithoutPEP(), WithoutMAC(), WithAfricanGroundStation(), WithForcedOperatorDNS(),
		WithThroughputThreshold(1<<20),
	)
	cfg := p.Config()
	if cfg.Customers != 77 || cfg.Days != 3 || cfg.Seed != 9 {
		t.Fatalf("core options: %+v", cfg)
	}
	if !cfg.DisablePEP || !cfg.DisableMAC || !cfg.AfricanGroundStation || !cfg.ForceOperatorDNS {
		t.Fatal("ablation options not applied")
	}
	if p.ThroughputMinBytes != 1<<20 {
		t.Fatal("throughput threshold not applied")
	}
}

func TestDefaults(t *testing.T) {
	p := New()
	cfg := p.Config()
	if cfg.Customers != 400 || cfg.Days != 2 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if p.ThroughputMinBytes != 5<<20 {
		t.Fatal("default throughput threshold")
	}
}

func TestRenderAllContainsEveryExperiment(t *testing.T) {
	r := experimentResults(t)
	out := r.RenderAll()
	for _, want := range []string{
		"Table 1:", "Figure 2:", "Figure 3:", "Figure 4:", "Figure 5:",
		"Figure 6:", "Figure 7:", "Figure 8a:", "Figure 8b:", "Figure 9:",
		"Figure 10:", "Tables 2/4/5", "Figure 11:", "Table 3:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
}

func TestAnalyzeReusesOutput(t *testing.T) {
	r := experimentResults(t)
	p := New(WithCustomers(300), WithDays(2), WithSeed(2022))
	ds := analytics.NewDataset(r.Output, 2)
	again := p.Analyze(r.Output, ds)
	// Re-analysis of the same logs reproduces the same headline numbers.
	if again.Table1.SharePct != nil && r.Table1.SharePct != nil {
		for proto, v := range r.Table1.SharePct {
			if got := again.Table1.SharePct[proto]; got != v {
				t.Fatalf("re-analysis diverged for %v: %v vs %v", proto, got, v)
			}
		}
	}
	if len(again.Fig2.Rows) != len(r.Fig2.Rows) {
		t.Fatal("Fig2 rows differ on re-analysis")
	}
}

func TestTop6(t *testing.T) {
	if len(Top6()) != 6 {
		t.Fatal("Top6 broken")
	}
}
