// Package satwatch reproduces "When Satellite is All You Have: Watching
// the Internet from 550 ms" (IMC 2022): a passive-measurement pipeline for
// GEO satellite internet access, built over a full synthetic deployment —
// satellite geometry, spot beams with a TDMA/slotted-Aloha MAC, a PEP with
// finite resources, QoS shaping, a CDN/DNS ecosystem with the paper's
// server-selection pathologies, and a Tstat-style probe at the single
// ground station.
//
// The typical use is three calls:
//
//	p := satwatch.New(satwatch.WithCustomers(400), satwatch.WithDays(2))
//	res, err := p.Run()
//	fmt.Println(res.RenderAll())
//
// Run generates the deployment's traffic, measures it with the probe, and
// materializes every table and figure of the paper's evaluation. The
// Results fields expose the typed experiment outputs for programmatic use.
package satwatch

import (
	"context"
	"strings"

	"satwatch/internal/analytics"
	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/netsim"
	"satwatch/internal/prof"
	"satwatch/internal/report"
	"satwatch/internal/trace"
)

// Pipeline is a configured end-to-end run: generate → probe → analyze.
type Pipeline struct {
	cfg netsim.Config
	// ThroughputMinBytes is the Figure 11 bulk-flow threshold. The paper
	// uses 10 MB on three months of traffic; scaled runs default to 5 MB.
	ThroughputMinBytes int64
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithCustomers sets the population size.
func WithCustomers(n int) Option { return func(p *Pipeline) { p.cfg.Customers = n } }

// WithDays sets the observation window in days.
func WithDays(n int) Option { return func(p *Pipeline) { p.cfg.Days = n } }

// WithSeed sets the run's deterministic seed.
func WithSeed(seed uint64) Option { return func(p *Pipeline) { p.cfg.Seed = seed } }

// WithConstellation selects the constellation backend serving the
// deployment: "geo" (the paper's 550 ms bent pipe, the default) or "leo"
// (a low-orbit shell with 15–60 ms time-varying RTTs, satellite
// handovers, and rotating gateways). Unknown names fail the run.
func WithConstellation(name string) Option {
	return func(p *Pipeline) { p.cfg.Constellation = name }
}

// WithParallelism sets the number of simulation workers for both passes
// (0 uses GOMAXPROCS). Results depend only on the seed, not on the worker
// count: outputs are byte-identical at any parallelism.
func WithParallelism(n int) Option { return func(p *Pipeline) { p.cfg.Parallelism = n } }

// WithIntentCacheBytes bounds the memory the simulator spends keeping
// pass-A flow intents for reuse in pass B (0 uses the 512 MiB default;
// negative disables the cache). The budget trades memory for regeneration
// time and never affects outputs.
func WithIntentCacheBytes(n int64) Option {
	return func(p *Pipeline) { p.cfg.IntentCacheBytes = n }
}

// WithTracer attaches a flow-trace recorder: sampled flows get a
// per-flow latency-decomposition span tree written as JSONL (see
// internal/trace). The caller owns the tracer and must Close it after
// Run to flush the buffered flows.
func WithTracer(tr *trace.Tracer) Option { return func(p *Pipeline) { p.cfg.Trace = tr } }

// WithFaults plays back a deterministic fault schedule during the run:
// rain fronts, beam outages, gateway switchovers, PEP overloads and
// resolver outages (see internal/faults). Nil restores clear skies.
func WithFaults(s *faults.Schedule) Option { return func(p *Pipeline) { p.cfg.Faults = s } }

// WithThroughputThreshold sets the Figure 11 minimum flow size in bytes.
func WithThroughputThreshold(b int64) Option {
	return func(p *Pipeline) { p.ThroughputMinBytes = b }
}

// Ablations (DESIGN.md A1-A4).

// WithoutPEP removes the PEP processing delays (ablation A1).
func WithoutPEP() Option { return func(p *Pipeline) { p.cfg.DisablePEP = true } }

// WithoutMAC replaces MAC access delays with ideal zero-delay access (A4).
func WithoutMAC() Option { return func(p *Pipeline) { p.cfg.DisableMAC = true } }

// WithAfricanGroundStation adds a second gateway in Africa (A2).
func WithAfricanGroundStation() Option {
	return func(p *Pipeline) { p.cfg.AfricanGroundStation = true }
}

// WithForcedOperatorDNS makes all customers use the operator resolver (A3).
func WithForcedOperatorDNS() Option {
	return func(p *Pipeline) { p.cfg.ForceOperatorDNS = true }
}

// New builds a pipeline with laptop-scale defaults (400 customers, 2 days).
func New(opts ...Option) *Pipeline {
	p := &Pipeline{cfg: netsim.DefaultConfig(), ThroughputMinBytes: 5 << 20}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Results holds the enriched dataset plus every materialized experiment.
type Results struct {
	// Output is the raw simulation product: anonymized flow and DNS logs
	// plus operator metadata.
	Output *netsim.Output
	// Dataset is the enriched analysis view.
	Dataset *analytics.Dataset

	Table1 report.Table1
	Fig2   report.Fig2
	Fig3   report.Fig3
	Fig4   report.Fig4
	Fig5   report.Fig5
	Fig6   report.Fig6
	Fig7   report.Fig7
	Fig8a  report.Fig8a
	Fig8b  report.Fig8b
	Fig9   report.Fig9
	Fig10  report.Fig10
	Table2 report.ResolverImpact
	Fig11  report.Fig11
	// Table3 is the Appendix A service-classification rule table.
	Table3 report.Table3
	// Tables45 is the appendix version of Table 2, covering four
	// countries.
	Tables45 report.ResolverImpact
	// Signatures is the region-level latency-signature experiment:
	// per-country satellite-RTT distribution fingerprints that identify
	// the serving orbit family (GEO vs LEO) from the logs alone. Not a
	// paper table; rendered by satreport after the paper's figures.
	Signatures report.Signatures
}

// Run executes the pipeline.
func (p *Pipeline) Run() (*Results, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the pipeline under ctx: cancellation mid-simulation
// yields the flows the workers had finished, analyzed as usual, with
// Output.Stats.Interrupted set (see netsim.RunContext).
func (p *Pipeline) RunContext(ctx context.Context) (*Results, error) {
	out, err := netsim.RunContext(ctx, p.cfg)
	if err != nil {
		return nil, err
	}
	// Analysis runs as the stage=report profile stage; its allocation
	// delta joins the simulator's per-stage accounting in Stats.
	var res *Results
	alloc := prof.Stage(ctx, prof.StageReport, func(context.Context) {
		ds := analytics.NewDataset(out, p.cfg.Days)
		res = p.Analyze(out, ds)
	})
	if out.Stats.StageAllocs != nil {
		out.Stats.StageAllocs["report"] = alloc
	}
	return res, nil
}

// Analyze materializes all experiments from an existing output (useful
// when replaying saved logs).
func (p *Pipeline) Analyze(out *netsim.Output, ds *analytics.Dataset) *Results {
	days := p.cfg.Days
	if days <= 0 {
		days = 2 // the netsim effective default
	}
	return &Results{
		Output:     out,
		Dataset:    ds,
		Table1:     report.BuildTable1(ds),
		Fig2:       report.BuildFig2(ds),
		Fig3:       report.BuildFig3(ds),
		Fig4:       report.BuildFig4(ds),
		Fig5:       report.BuildFig5(ds),
		Fig6:       report.BuildFig6(ds),
		Fig7:       report.BuildFig7(ds),
		Fig8a:      report.BuildFig8a(ds),
		Fig8b:      report.BuildFig8b(ds, out.Beams),
		Fig9:       report.BuildFig9(ds),
		Fig10:      report.BuildFig10(ds),
		Table2:     report.BuildResolverImpact(ds, "GB", "NG"),
		Fig11:      report.BuildFig11(ds, p.ThroughputMinBytes),
		Table3:     report.BuildTable3(),
		Tables45:   report.BuildResolverImpact(ds, "CD", "ZA", "NG", "GB"),
		Signatures: report.BuildSignatures(ds),
	}
}

// Config returns the underlying simulation configuration.
func (p *Pipeline) Config() netsim.Config { return p.cfg }

// RenderAll prints every experiment in the paper's order.
func (r *Results) RenderAll() string {
	var sb strings.Builder
	for _, s := range []string{
		r.Table1.Render(), r.Fig2.Render(), r.Fig3.Render(), r.Fig4.Render(),
		r.Fig5.Render(), r.Fig6.Render(), r.Fig7.Render(), r.Fig8a.Render(),
		r.Fig8b.Render(), r.Fig9.Render(), r.Fig10.Render(), r.Table2.Render(),
		r.Fig11.Render(), r.Table3.Render(),
	} {
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Top6 re-exports the paper's six focus countries for callers of the API.
func Top6() []geo.CountryCode { return geo.Top6() }
